"""``shmls-lint`` — semantic lint passes over kernels and planned sweeps.

Every rule is a small function registered in :data:`LINT_RULES`: it
inspects one :class:`LintTarget` (a stencil-dialect module plus the
pipeline spec / effective options / device it is planned to compile with)
and emits :class:`~repro.ir.diagnostics.Diagnostic` records with op-path
locations through a shared :class:`~repro.ir.diagnostics.DiagnosticEngine`.
Dataflow facts come from the fingerprint-keyed
:class:`~repro.ir.analysis.AnalysisManager`, so repeated lint runs over an
unchanged module (e.g. one kernel under many sweep variants) are cache
hits.

Rule catalogue (see ``docs/analysis.md`` for triggering examples):

``out-of-bounds-access``   stencil access offsets escape the field bounds
``dead-field``             stage results never stored / arguments never read
``small-data-budget``      BRAM copies of small data exceed the budget
``unconsumed-option``      pipeline option no scheduled pass ever consumes
``pipeline-spec``          malformed spec / unknown pass / too-late option
``bundle-conflict``        AXI bundle demands exceed the device's port budget
``infeasible-config``      resource-model floor estimate cannot fit the device

Exit codes: 0 clean, 1 warnings only, 2 errors (also used by
``--verify-diagnostics`` corpus mismatches).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field as dataclass_field
from typing import Callable

from repro.core.config import CompilerOptions, resolve_option_field, resolve_option_overrides
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.fpga.device import ALVEO_U280, FPGADevice, device_by_name
from repro.fpga.resource_model import (
    COST_PER_AXI_PORT_BRAM,
    COST_PER_AXI_PORT_FF,
    COST_PER_AXI_PORT_LUT,
    COST_PER_FLOP_FF,
    COST_PER_FLOP_LUT,
    COST_PER_MUL_DSP,
    COST_PER_STAGE_FF,
    COST_PER_STAGE_LUT,
    COST_PER_STREAM_FF,
    COST_PER_STREAM_LUT,
    KERNEL_BASE_FF,
    KERNEL_BASE_LUT,
    ResourceUsage,
    _bram_blocks,
)
from repro.ir.analysis import AnalysisManager
from repro.ir.diagnostics import Diagnostic, DiagnosticEngine
from repro.ir.pass_registry import PassRegistry, PipelineParseError, parse_pipeline_spec

#: Fraction of the device's usable BRAM the small-data copies may claim
#: before the ``small-data-budget`` rule warns.
SMALL_DATA_BRAM_FRACTION = 0.05


@dataclass
class LintTarget:
    """One unit of linting: a module plus its planned compilation context."""

    module: ModuleOp
    label: str = "<module>"
    spec: str = ""
    options: CompilerOptions = dataclass_field(default_factory=CompilerOptions)
    device: FPGADevice = ALVEO_U280
    analyses: AnalysisManager = dataclass_field(default_factory=AnalysisManager)


LintRule = Callable[[LintTarget, DiagnosticEngine], None]

LINT_RULES: dict[str, LintRule] = {}


def lint_rule(name: str) -> Callable[[LintRule], LintRule]:
    def decorator(fn: LintRule) -> LintRule:
        LINT_RULES[name] = fn
        return fn

    return decorator


def effective_options(
    spec: str, base: CompilerOptions | None = None
) -> CompilerOptions:
    """Flatten every pipeline-spec option override on top of ``base``.

    Malformed specs/options resolve to ``base`` unchanged — the
    ``pipeline-spec`` rule reports them separately.
    """
    options = base if base is not None else CompilerOptions()
    if not spec:
        return options
    try:
        entries = parse_pipeline_spec(spec)
    except PipelineParseError:
        return options
    for _name, overrides in entries:
        try:
            options = resolve_option_overrides(options, overrides)
        except ValueError:
            continue
    return options


def run_lint(
    target: LintTarget,
    rules: list[str] | None = None,
    engine: DiagnosticEngine | None = None,
) -> DiagnosticEngine:
    """Run the (selected) lint rules over ``target``."""
    engine = engine if engine is not None else DiagnosticEngine()
    selected = rules if rules is not None else list(LINT_RULES)
    for name in selected:
        rule = LINT_RULES.get(name)
        if rule is None:
            raise KeyError(
                f"unknown lint rule '{name}' (known: {', '.join(sorted(LINT_RULES))})"
            )
        rule(target, engine)
    return engine


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@lint_rule("out-of-bounds-access")
def _rule_out_of_bounds(target: LintTarget, engine: DiagnosticEngine) -> None:
    """Stencil access offsets must keep the store domain inside the field."""
    bounds = target.analyses.get("access-bounds", target.module)
    for record in bounds.violations:
        axes = record.out_of_bounds_axes
        engine.error(
            f"stencil access offset {record.offset} on field "
            f"'{record.field_name}' reads outside the field bounds",
            op=record.access_op,
            rule="out-of-bounds-access",
            notes=tuple(
                f"axis {axis}: access covers [{record.access_lower[axis]}, "
                f"{record.access_upper[axis]}) but the field only spans "
                f"[{record.field_lower[axis]}, {record.field_upper[axis]})"
                for axis in axes
            ),
        )


@lint_rule("dead-field")
def _rule_dead_field(target: LintTarget, engine: DiagnosticEngine) -> None:
    """Fields written but never read, and arguments never used at all."""
    from repro.dialects import stencil

    def_use = target.analyses.get("def-use", target.module)
    for result in def_use.unused_results:
        if isinstance(result.op, stencil.ApplyOp):
            engine.warning(
                "stencil stage result is never stored or read "
                "(field written, never read)",
                op=result.op,
                rule="dead-field",
            )
    for arg in def_use.unused_args:
        func = arg.block.parent_op()
        name = arg.name_hint or f"arg{arg.index}"
        engine.warning(
            f"kernel argument '{name}' is never read or written",
            op=func,
            rule="dead-field",
        )


@lint_rule("small-data-budget")
def _rule_small_data_budget(target: LintTarget, engine: DiagnosticEngine) -> None:
    """Small-data BRAM copies must stay within a fraction of usable BRAM."""
    if not target.options.copy_small_data_to_bram:
        return
    analysis = target.analyses.get("stencil-kernel", target.module)
    if analysis is None or not analysis.small_data:
        return
    blocks = sum(
        _bram_blocks(arg.num_elements * arg.element_bits)
        for arg in analysis.small_data
    )
    budget = int(target.device.usable.bram_36k * SMALL_DATA_BRAM_FRACTION)
    if blocks <= budget:
        return
    func = _kernel_func(target.module, analysis.func_name)
    names = ", ".join(arg.name for arg in analysis.small_data)
    engine.warning(
        f"small data promoted to BRAM needs {blocks} BRAM blocks, past the "
        f"small_data budget of {budget} on {target.device.name}",
        op=func,
        path="" if func is not None else f"func @{analysis.func_name}",
        rule="small-data-budget",
        notes=(
            f"small data arguments: {names}",
            "disable copy_small_data_to_bram (bram=0) or shrink the arrays",
        ),
    )


@lint_rule("pipeline-spec")
def _rule_pipeline_spec(target: LintTarget, engine: DiagnosticEngine) -> None:
    """The pipeline spec must parse, build, and not schedule options too late."""
    if not target.spec:
        return
    registry = PassRegistry.default()
    try:
        entries = parse_pipeline_spec(target.spec)
    except PipelineParseError as err:
        engine.error(str(err), path=f"pipeline '{target.spec}'", rule="pipeline-spec")
        return
    for name, options in entries:
        try:
            pass_ = registry.create(name, options)
        except PipelineParseError as err:
            engine.error(
                str(err), path=f"pipeline '{target.spec}'", rule="pipeline-spec"
            )
            continue
        check_timing = getattr(pass_, "check_override_timing", None)
        if check_timing is None:
            continue
        try:
            check_timing()
        except ValueError as err:
            engine.error(
                str(err), path=f"pipeline '{target.spec}'", rule="pipeline-spec"
            )


@lint_rule("unconsumed-option")
def _rule_unconsumed_option(target: LintTarget, engine: DiagnosticEngine) -> None:
    """Every spec option must have a consuming pass scheduled in the pipeline."""
    from repro.transforms.stencil_hls.context import (
        _OPTION_CONSUMER_PHASE,
        _PHASE_HINTS,
        StencilLoweringPass,
    )

    if not target.spec:
        return
    registry = PassRegistry.default()
    try:
        entries = parse_pipeline_spec(target.spec)
    except PipelineParseError:
        return  # the pipeline-spec rule reports it
    scheduled_phases: set[int] = set()
    built: list[tuple[str, dict, object]] = []
    for name, options in entries:
        try:
            pass_ = registry.create(name, options)
        except PipelineParseError:
            continue
        built.append((name, options, pass_))
        if registry.resolve(name) == "convert-stencil-to-hls":
            scheduled_phases.update(_PHASE_HINTS)
        elif isinstance(pass_, StencilLoweringPass):
            scheduled_phases.add(pass_.produces_phase)
    for name, options, pass_ in built:
        for key in options:
            try:
                field_name = resolve_option_field(key)
            except ValueError:
                continue  # unknown option: already a build error
            consumer = _OPTION_CONSUMER_PHASE.get(field_name)
            if consumer is None or consumer in scheduled_phases:
                continue
            engine.warning(
                f"option '{key}' on pass '{name}' is consumed by no scheduled "
                f"pass: '{_PHASE_HINTS[consumer]}' is not in the pipeline",
                path=f"pipeline '{target.spec}'",
                rule="unconsumed-option",
            )


@lint_rule("bundle-conflict")
def _rule_bundle_conflict(target: LintTarget, engine: DiagnosticEngine) -> None:
    """AXI bundle assignment must fit the device's master-port budget."""
    analysis = target.analyses.get("stencil-kernel", target.module)
    if analysis is None:
        return
    func = _kernel_func(target.module, analysis.func_name)
    options = target.options
    if not options.separate_bundles and not options.bundle_small_data:
        engine.warning(
            "bundle_small_data=false has no effect when separate_bundles=false "
            "(everything already shares one bundle)",
            op=func,
            rule="bundle-conflict",
        )
    if options.separate_bundles and target.device.max_axi_ports > 0:
        ports = analysis.ports_per_cu(options.bundle_small_data)
        if ports > target.device.max_axi_ports:
            engine.error(
                f"kernel needs {ports} AXI ports per compute unit but "
                f"{target.device.name} supports at most "
                f"{target.device.max_axi_ports}",
                op=func,
                rule="bundle-conflict",
                notes=(
                    "share bundles (separate_bundles=false) or bundle the "
                    "small data (bundle_small_data=true)",
                ),
            )


@lint_rule("infeasible-config")
def _rule_infeasible_config(target: LintTarget, engine: DiagnosticEngine) -> None:
    """A floor resource estimate of the planned configuration must fit."""
    analysis = target.analyses.get("stencil-kernel", target.module)
    if analysis is None or not analysis.stages:
        return
    usage = estimate_configuration_floor(analysis, target.options)
    if usage.fits(target.device):
        return
    func = _kernel_func(target.module, analysis.func_name)
    usable = target.device.usable
    over = []
    if usage.bram_36k > usable.bram_36k:
        over.append(f"BRAM {usage.bram_36k}/{usable.bram_36k}")
    if usage.luts > usable.luts:
        over.append(f"LUT {usage.luts}/{usable.luts}")
    if usage.flip_flops > usable.flip_flops:
        over.append(f"FF {usage.flip_flops}/{usable.flip_flops}")
    if usage.dsps > usable.dsps:
        over.append(f"DSP {usage.dsps}/{usable.dsps}")
    engine.error(
        "configuration is infeasible for "
        f"{target.device.name}: floor estimate exceeds the device "
        f"({'; '.join(over) or 'capacity'})",
        op=func,
        rule="infeasible-config",
        notes=(
            f"ii={target.options.target_ii} depth={target.options.stream_depth} "
            f"width={target.options.interface_width_bits} "
            f"pack={int(target.options.pack_interfaces)}",
        ),
    )


def estimate_configuration_floor(analysis, options: CompilerOptions) -> ResourceUsage:
    """Irreducible pre-lowering resource floor of one configuration.

    Deliberately conservative (no shift buffers, one compute unit): stream
    FIFOs at the requested depth/width, BRAM copies of small data and the
    AXI interfaces — storage no later optimisation can remove.  If *this*
    does not fit the device, the real design cannot either.
    """
    usage = ResourceUsage(luts=KERNEL_BASE_LUT, flip_flops=KERNEL_BASE_FF)
    width = options.interface_width_bits if options.pack_interfaces else 64
    lanes = max(width // 64, 1)
    for stage in analysis.stages:
        flops = max(stage.flops, 1)
        usage.luts += COST_PER_STAGE_LUT + flops * COST_PER_FLOP_LUT
        usage.flip_flops += COST_PER_STAGE_FF + flops * COST_PER_FLOP_FF
        usage.dsps += max(flops // 2, 1) * COST_PER_MUL_DSP
        # One window stream per read field plus the stage's output stream.
        streams = len(stage.offsets) + 1
        usage.luts += streams * COST_PER_STREAM_LUT
        usage.flip_flops += streams * COST_PER_STREAM_FF
        usage.bram_36k += streams * _bram_blocks(64 * lanes * options.stream_depth)
    if options.copy_small_data_to_bram:
        for arg in analysis.small_data:
            usage.bram_36k += _bram_blocks(arg.num_elements * arg.element_bits)
    ports = analysis.ports_per_cu(options.bundle_small_data)
    usage.luts += ports * COST_PER_AXI_PORT_LUT
    usage.flip_flops += ports * COST_PER_AXI_PORT_FF
    usage.bram_36k += ports * COST_PER_AXI_PORT_BRAM
    return usage


def _kernel_func(module: ModuleOp, func_name: str) -> FuncOp | None:
    for op in module.walk_type(FuncOp):
        if op.sym_name == func_name:
            return op
    return None


# ---------------------------------------------------------------------------
# --verify-diagnostics corpus harness
# ---------------------------------------------------------------------------

_EXPECTED_RE = re.compile(
    r"#\s*expected-(error|warning|remark):\s*(.+?)\s*$", re.MULTILINE
)


def compile_expectation(pattern: str) -> re.Pattern[str]:
    """FileCheck-style pattern: literal text with ``{{...}}`` regex islands."""
    parts: list[str] = []
    pos = 0
    for match in re.finditer(r"\{\{(.*?)\}\}", pattern):
        parts.append(re.escape(pattern[pos : match.start()]))
        parts.append(match.group(1))
        pos = match.end()
    parts.append(re.escape(pattern[pos:]))
    return re.compile("".join(parts))


@dataclass
class ExpectedDiagnostic:
    severity: str
    pattern: str

    def matches(self, diag: Diagnostic) -> bool:
        if diag.severity != self.severity:
            return False
        return compile_expectation(self.pattern).search(diag.render()) is not None


def parse_expected_diagnostics(text: str) -> list[ExpectedDiagnostic]:
    return [
        ExpectedDiagnostic(severity=m.group(1), pattern=m.group(2))
        for m in _EXPECTED_RE.finditer(text)
    ]


def verify_diagnostics(
    expectations: list[ExpectedDiagnostic], diagnostics: list[Diagnostic]
) -> list[str]:
    """Match expectations 1:1 against emitted diagnostics; return mismatches.

    Every expectation must match exactly one distinct diagnostic, and every
    emitted error/warning must be claimed by an expectation (remarks are
    free unless expected).  Returns human-readable failure lines, empty on
    success.
    """
    failures: list[str] = []
    unclaimed = list(diagnostics)
    for expected in expectations:
        match = next((d for d in unclaimed if expected.matches(d)), None)
        if match is None:
            failures.append(
                f"expected-{expected.severity} never emitted: {expected.pattern}"
            )
            continue
        unclaimed.remove(match)
    for diag in unclaimed:
        if diag.severity in ("error", "warning"):
            failures.append(f"unexpected diagnostic: {diag.render()}")
    return failures


def lint_corpus_file(path: str) -> tuple[list[str], DiagnosticEngine]:
    """Run lint over one corpus fixture and check its expected diagnostics.

    A fixture is a python file defining ``build() -> ModuleOp`` and
    optionally ``SPEC`` (pipeline spec), ``DEVICE`` (device name), ``RULES``
    (rule subset) and ``OPTIONS`` (keyword overrides for
    :class:`CompilerOptions`), plus ``# expected-error:`` /
    ``# expected-warning:`` / ``# expected-remark:`` comment lines with
    FileCheck-style ``{{regex}}`` islands matched against the rendered
    diagnostics.
    """
    import importlib.util

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    expectations = parse_expected_diagnostics(text)
    spec_obj = importlib.util.spec_from_file_location(f"lint_corpus_{id(text)}", path)
    assert spec_obj is not None and spec_obj.loader is not None
    module = importlib.util.module_from_spec(spec_obj)
    spec_obj.loader.exec_module(module)

    pipeline_spec = getattr(module, "SPEC", "")
    device = device_by_name(getattr(module, "DEVICE", ALVEO_U280.name))
    rules = getattr(module, "RULES", None)
    base = CompilerOptions(**getattr(module, "OPTIONS", {}))
    ir_module = module.build()
    target = LintTarget(
        module=ir_module,
        label=path,
        spec=pipeline_spec,
        options=effective_options(pipeline_spec, base),
        device=device,
    )
    engine = run_lint(target, rules=rules)
    return verify_diagnostics(expectations, engine.diagnostics), engine


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def exit_code_for(engines: list[DiagnosticEngine]) -> int:
    if any(e.has_errors for e in engines):
        return 2
    if any(e.has_warnings for e in engines):
        return 1
    return 0


def _print_engine(label: str, engine: DiagnosticEngine) -> None:
    status = "clean"
    if engine.has_errors:
        status = f"{len(engine.errors)} error(s), {len(engine.warnings)} warning(s)"
    elif engine.has_warnings:
        status = f"{len(engine.warnings)} warning(s)"
    print(f"{label}: {status}")
    for line in engine.render_lines():
        print(f"  {line}")


def _target_json(label: str, engine: DiagnosticEngine) -> dict:
    return {
        "label": label,
        "errors": len(engine.errors),
        "warnings": len(engine.warnings),
        "diagnostics": [d.as_dict() for d in engine.diagnostics],
    }


def _lint_kernel_target(
    kernel: str, size: str, spec: str, device: FPGADevice
) -> LintTarget:
    from repro.evaluation.harness import KERNEL_BUILDERS, KERNEL_SIZES

    builders = KERNEL_BUILDERS
    if kernel not in builders:
        raise KeyError(f"unknown kernel '{kernel}' (known: {', '.join(builders)})")
    sizes = KERNEL_SIZES[kernel]
    if size not in sizes:
        raise KeyError(
            f"unknown size '{size}' for {kernel} (known: {', '.join(sizes)})"
        )
    module = builders[kernel](sizes[size].shape)
    return LintTarget(
        module=module,
        label=f"{kernel}@{size}",
        spec=spec,
        options=effective_options(spec),
        device=device,
    )


def lint_benchmark_case(
    kernel: str,
    size: str,
    variant: str,
    device: FPGADevice,
    analyses: AnalysisManager | None = None,
) -> DiagnosticEngine:
    """Lint one planned benchmark case (kernel @ size under a named
    pipeline variant).  This is the orchestrator's ``--dry-run`` hook: a
    case whose engine reports errors is doomed to fail at compile time.

    Passing a shared ``analyses`` manager makes repeated lints of the same
    kernel module (one per sweep variant) hit the fingerprint cache.
    """
    from repro.evaluation.harness import PIPELINE_VARIANTS

    spec = PIPELINE_VARIANTS.get(variant) or ""
    target = _lint_kernel_target(kernel, size, spec, device)
    target.label = f"{kernel}@{size}/{variant}"
    if analyses is not None:
        target.analyses = analyses
    return run_lint(target)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="shmls-lint",
        description="Semantic lint over stencil kernels and planned sweeps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    kernel_p = sub.add_parser("kernel", help="lint one benchmark kernel")
    kernel_p.add_argument("name", help="kernel name (e.g. pw_advection)")
    kernel_p.add_argument("--size", default="8M", help="problem size label")
    kernel_p.add_argument("--device", default=ALVEO_U280.name)
    kernel_p.add_argument("--pass-pipeline", default="", metavar="SPEC")
    kernel_p.add_argument("--json", action="store_true", help="emit JSON")

    sweep_p = sub.add_parser("sweep", help="lint a planned sweep (kernels × variants)")
    sweep_p.add_argument("--kernels", default="pw_advection,tracer_advection")
    sweep_p.add_argument("--sizes", default="8M")
    sweep_p.add_argument(
        "--variants", default="default", help="comma-separated PIPELINE_VARIANTS names"
    )
    sweep_p.add_argument("--device", default=ALVEO_U280.name)
    sweep_p.add_argument("--json", action="store_true", help="emit JSON")

    corpus_p = sub.add_parser("corpus", help="lint fixture files")
    corpus_p.add_argument("files", nargs="+", help="corpus fixture .py files")
    corpus_p.add_argument(
        "--verify-diagnostics",
        action="store_true",
        help="check each fixture's expected-diagnostic comments 1:1",
    )
    corpus_p.add_argument("--json", action="store_true", help="emit JSON")

    args = parser.parse_args(argv)
    device = device_by_name(getattr(args, "device", ALVEO_U280.name))

    engines: list[DiagnosticEngine] = []
    results: list[dict] = []

    if args.command == "kernel":
        try:
            target = _lint_kernel_target(
                args.name, args.size, args.pass_pipeline, device
            )
        except KeyError as err:
            parser.error(str(err))
        engine = run_lint(target)
        engines.append(engine)
        results.append(_target_json(target.label, engine))
        if not args.json:
            _print_engine(target.label, engine)

    elif args.command == "sweep":
        from repro.evaluation.harness import PIPELINE_VARIANTS

        kernels = [k for k in args.kernels.split(",") if k]
        variants = [v for v in args.variants.split(",") if v]
        sizes = [s for s in args.sizes.split(",") if s]
        for variant in variants:
            if variant not in PIPELINE_VARIANTS:
                parser.error(
                    f"unknown variant '{variant}' "
                    f"(known: {', '.join(sorted(PIPELINE_VARIANTS))})"
                )
        for kernel in kernels:
            for size in sizes:
                for variant in variants:
                    spec = PIPELINE_VARIANTS[variant] or ""
                    try:
                        target = _lint_kernel_target(kernel, size, spec, device)
                    except KeyError as err:
                        parser.error(str(err))
                    target.label = f"{kernel}@{size}/{variant}"
                    engine = run_lint(target)
                    engines.append(engine)
                    results.append(_target_json(target.label, engine))
                    if not args.json:
                        _print_engine(target.label, engine)

    elif args.command == "corpus":
        verify_failures: list[str] = []
        for path in args.files:
            failures, engine = lint_corpus_file(path)
            engines.append(engine)
            entry = _target_json(path, engine)
            if args.verify_diagnostics:
                entry["verify_failures"] = failures
                verify_failures.extend(f"{path}: {line}" for line in failures)
            results.append(entry)
            if not args.json:
                _print_engine(path, engine)
                for line in failures if args.verify_diagnostics else []:
                    print(f"  VERIFY: {line}")
        if args.verify_diagnostics:
            code = 2 if verify_failures else 0
            if args.json:
                print(
                    json.dumps(
                        {"targets": results, "exit_code": code}, indent=2, sort_keys=True
                    )
                )
            elif not verify_failures:
                print(f"verified {len(args.files)} fixture(s): all diagnostics match")
            return code

    code = exit_code_for(engines)
    if getattr(args, "json", False):
        print(json.dumps({"targets": results, "exit_code": code}, indent=2, sort_keys=True))
    return code


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main())
