"""The NEMO tracer advection kernel (PSyclone benchmark suite).

The second evaluation kernel of the paper: 24 stencil computations chained
across the tracer and workspace fields of the NEMO ``tra_adv`` benchmark,
with 17 memory arguments (14 three-dimensional fields plus 3 per-level
profile arrays), each mapped to its own memory port — which is why the U280
can only hold a single compute unit for this kernel (§4).

The computations form twelve dependency waves of two stencils each (an
x-direction chain and a y-direction chain per wave): the dependencies
between waves are what prevent a clean per-field split into concurrent
dataflow stages and reduce Stencil-HMLS's advantage relative to PW
advection, exactly as the paper reports.
"""

from __future__ import annotations

from repro.dialects.builtin import ModuleOp
from repro.frontends.builder import StencilDefinition, StencilKernelBuilder
from repro.frontends.expr import Expr

#: Scalar parameters of the kernel and their benchmark values.
TRACER_SCALARS: dict[str, float] = {"rdt": 0.05, "zice": 0.3}

#: 3-D field arguments.  The ten inputs plus seven workspace/output fields
#: give the 17 memory arguments of the paper, each mapped to its own port.
TRACER_INPUT_FIELDS = [
    "tsn", "un", "vn", "wn", "umask", "vmask", "tmask",
    "rnfmsk", "upsmsk", "ztfreez",
]
TRACER_WORKSPACE_FIELDS = ["zwx", "zwy", "zwz", "zslpx", "zslpy", "zind", "mydomain"]
#: The tracer kernel has no per-level profile arrays (all masks are full
#: fields in NEMO); the small-data path is exercised by PW advection.
TRACER_SMALL_DATA: list[str] = []

#: Number of chained rounds; each round contributes two stencil computations.
TRACER_ROUNDS = 12

_A_CYCLE = ["zwx", "zslpx", "zwz"]
_B_CYCLE = ["zwy", "zslpy", "zind"]


def tracer_advection_stencil_count() -> int:
    """24 stencil computations, as stated in §4 of the paper."""
    return 2 * TRACER_ROUNDS


def round_coefficient(round_index: int) -> float:
    """Blending coefficient of one chained round (kept in (0, 0.5])."""
    return 1.0 / (round_index + 2.0)


def tracer_advection_builder(shape: tuple[int, int, int]) -> StencilKernelBuilder:
    """Construct the 24-stencil kernel through the shared builder."""
    builder = StencilKernelBuilder("tracer_advection", shape)

    fields = {name: builder.field(name) for name in TRACER_INPUT_FIELDS}
    for name in TRACER_WORKSPACE_FIELDS:
        fields[name] = builder.field(name, output=True)
    rdt = builder.scalar("rdt")
    zice = builder.scalar("zice")

    a_prev = "tsn"
    b_prev = "tsn"
    for r in range(TRACER_ROUNDS):
        a_out = "mydomain" if r == TRACER_ROUNDS - 1 else _A_CYCLE[r % 3]
        b_out = _B_CYCLE[r % 3]
        coeff = round_coefficient(r)

        a_field = fields[a_prev]
        b_field = fields[b_prev]
        un, vn, wn = fields["un"], fields["vn"], fields["wn"]
        umask, vmask, tmask = fields["umask"], fields["vmask"], fields["tmask"]

        adv_a: Expr = un[0, 0, 0] * (a_field[1, 0, 0] - a_field[-1, 0, 0]) \
            + 0.25 * (b_field[0, 1, 0] - b_field[0, -1, 0])
        expr_a: Expr = a_field[0, 0, 0] + rdt * coeff * adv_a * umask[0, 0, 0]
        if r == 3:
            expr_a = expr_a + fields["rnfmsk"][0, 0, 0] * zice
        if r == 7:
            expr_a = expr_a + fields["upsmsk"][0, 0, 0] * 0.1
        if r == TRACER_ROUNDS - 1:
            expr_a = expr_a + fields["ztfreez"][0, 0, 0] * 0.01

        adv_b: Expr = vn[0, 0, 0] * (b_field[0, 1, 0] - b_field[0, -1, 0]) \
            + 0.25 * (a_field[1, 0, 0] - a_field[-1, 0, 0])
        expr_b: Expr = b_field[0, 0, 0] + rdt * coeff * adv_b * vmask[0, 0, 0]
        if r == 5:
            expr_b = expr_b + 0.05 * tmask[0, 0, 0] * (wn[0, 0, 1] - wn[0, 0, -1])

        builder.add_stencil(fields[a_out], expr_a)
        builder.add_stencil(fields[b_out], expr_b)
        a_prev, b_prev = a_out, b_out

    return builder


def tracer_advection_definitions(shape: tuple[int, int, int]) -> list[StencilDefinition]:
    """The 24 stencil definitions (used by the numpy reference)."""
    return list(tracer_advection_builder(shape)._stencils)


def build_tracer_advection(shape: tuple[int, int, int]) -> ModuleOp:
    """Stencil-dialect module for the tracer advection kernel."""
    return tracer_advection_builder(shape).build()


def tracer_advection_small_data(shape: tuple[int, int, int]) -> dict:
    """The tracer kernel carries no small-data profile arrays (see above)."""
    return {}
