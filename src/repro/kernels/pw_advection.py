"""The Piacsek and Williams (PW) advection scheme.

This is the first evaluation kernel of the paper: the PW advection scheme of
the Met Office MONC atmospheric model, expressed through the PSyclone-like
Fortran frontend.  It contains three separate stencil computations (the
``su``/``sv``/``sw`` source terms) executing across the three velocity
fields ``u``/``v``/``w``, with per-level profile arrays (``tzc1``, ``tzc2``,
``tzd1``, ``tzd2``) as the small constant data that Stencil-HMLS copies into
BRAM, and the ``tcx``/``tcy`` grid-spacing scalars.

Kernel argument ports: one per field (6) plus one shared port for the small
data = 7 m_axi ports per compute unit, which is what limits the U280 to four
compute units (§4).
"""

from __future__ import annotations

from repro.dialects.builtin import ModuleOp
from repro.frontends.builder import StencilKernelBuilder
from repro.frontends.psyclone import PSycloneFrontend, PSycloneKernel
from repro.kernels.grids import profile_array

#: Scalar parameters of the kernel and their benchmark values.
PW_SCALARS: dict[str, float] = {"tcx": 0.12, "tcy": 0.09}

#: Field arguments (inputs then outputs).
PW_INPUT_FIELDS = ["u", "v", "w"]
PW_OUTPUT_FIELDS = ["su", "sv", "sw"]
PW_SMALL_DATA = ["tzc1", "tzc2", "tzd1", "tzd2"]

_PW_STATEMENTS = [
    # d(su)/dt
    "su(i,j,k) = tcx*(u(i-1,j,k)*(u(i-1,j,k)+u(i,j,k)) - u(i+1,j,k)*(u(i,j,k)+u(i+1,j,k)))"
    " + tcy*(u(i,j-1,k)*(v(i,j-1,k)+v(i,j,k)) - u(i,j+1,k)*(v(i,j,k)+v(i,j+1,k)))"
    " + tzc1(k)*u(i,j,k-1)*(w(i,j,k-1)+w(i,j,k)) - tzc2(k)*u(i,j,k+1)*(w(i,j,k)+w(i,j,k+1))",
    # d(sv)/dt
    "sv(i,j,k) = tcx*(v(i-1,j,k)*(u(i-1,j,k)+u(i,j,k)) - v(i+1,j,k)*(u(i,j,k)+u(i+1,j,k)))"
    " + tcy*(v(i,j-1,k)*(v(i,j-1,k)+v(i,j,k)) - v(i,j+1,k)*(v(i,j,k)+v(i,j+1,k)))"
    " + tzc1(k)*v(i,j,k-1)*(w(i,j,k-1)+w(i,j,k)) - tzc2(k)*v(i,j,k+1)*(w(i,j,k)+w(i,j,k+1))",
    # d(sw)/dt
    "sw(i,j,k) = tcx*(w(i-1,j,k)*(u(i-1,j,k)+u(i,j,k)) - w(i+1,j,k)*(u(i,j,k)+u(i+1,j,k)))"
    " + tcy*(w(i,j-1,k)*(v(i,j-1,k)+v(i,j,k)) - w(i,j+1,k)*(v(i,j,k)+v(i,j+1,k)))"
    " + tzd1(k)*w(i,j,k-1)*(w(i,j,k-1)+w(i,j,k)) - tzd2(k)*w(i,j,k+1)*(w(i,j,k)+w(i,j,k+1))",
]


def pw_advection_psyclone_kernel(shape: tuple[int, int, int]) -> PSycloneKernel:
    """The PW advection kernel as a PSyclone-style kernel declaration."""
    nz = shape[2]
    kernel = PSycloneKernel(
        name="pw_advection",
        shape=shape,
        field_args=PW_INPUT_FIELDS + PW_OUTPUT_FIELDS,
        scalar_args=list(PW_SCALARS),
        small_data_args={name: nz for name in PW_SMALL_DATA},
        statements=list(_PW_STATEMENTS),
    )
    return kernel


def pw_advection_builder(shape: tuple[int, int, int]) -> StencilKernelBuilder:
    """The kernel lowered as far as the shared kernel builder."""
    return PSycloneFrontend().builder_for(pw_advection_psyclone_kernel(shape))


def build_pw_advection(shape: tuple[int, int, int]) -> ModuleOp:
    """Stencil-dialect module for the PW advection kernel at a problem size."""
    return pw_advection_builder(shape).build()


def pw_advection_small_data(shape: tuple[int, int, int]) -> dict:
    """Benchmark values of the per-level profile arrays."""
    nz = shape[2]
    return {name: profile_array(nz, name) for name in PW_SMALL_DATA}
