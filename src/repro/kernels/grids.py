"""Problem sizes and grid initialisation.

The paper evaluates PW advection on 8M, 32M and 134M point domains and the
tracer advection kernel on 8M and 33M points (§4 / artifact appendix).  The
concrete (nx, ny, nz) decompositions below keep the vertical column and the
inner plane fixed while growing the outer (streamed) dimension, which is how
the shift-buffer footprint stays (roughly) constant across problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProblemSize:
    """One evaluated problem size."""

    label: str
    shape: tuple[int, int, int]

    @property
    def points(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def megapoints(self) -> float:
        return self.points / 1e6

    def __str__(self) -> str:
        return f"{self.label} ({self.shape[0]}x{self.shape[1]}x{self.shape[2]})"


#: PW advection problem sizes (Figure 4, Figure 5, Table 1).
PW_ADVECTION_SIZES: dict[str, ProblemSize] = {
    "8M": ProblemSize("8M", (2048, 64, 64)),
    "32M": ProblemSize("32M", (8192, 64, 64)),
    "134M": ProblemSize("134M", (32768, 64, 64)),
}

#: Tracer advection problem sizes (Figure 4, Figure 6, Table 2).
TRACER_ADVECTION_SIZES: dict[str, ProblemSize] = {
    "8M": ProblemSize("8M", (2048, 64, 64)),
    "33M": ProblemSize("33M", (8192, 64, 64)),
}

#: Small grid used by correctness tests and the functional simulator.
TEST_SIZE = ProblemSize("test", (6, 5, 4))


def initial_fields(
    shape: tuple[int, int, int],
    names: list[str],
    seed: int = 2023,
    smooth: bool = True,
) -> dict[str, np.ndarray]:
    """Deterministic, smooth-ish initial conditions for the given fields."""
    rng = np.random.default_rng(seed)
    fields: dict[str, np.ndarray] = {}
    nx, ny, nz = shape
    x = np.linspace(0.0, 1.0, nx).reshape(-1, 1, 1)
    y = np.linspace(0.0, 1.0, ny).reshape(1, -1, 1)
    z = np.linspace(0.0, 1.0, nz).reshape(1, 1, -1)
    for index, name in enumerate(names):
        if smooth:
            base = (
                np.sin(2 * np.pi * (x + 0.13 * index))
                * np.cos(2 * np.pi * (y - 0.07 * index))
                * (0.5 + 0.5 * z)
            )
            noise = 0.05 * rng.standard_normal((nx, ny, nz))
            fields[name] = (base + noise).astype(np.float64)
        else:
            fields[name] = rng.standard_normal((nx, ny, nz)).astype(np.float64)
    return fields


def profile_array(length: int, name: str, seed: int = 7) -> np.ndarray:
    """A smooth 1-D vertical profile (the "small data" of the kernels)."""
    rng = np.random.default_rng(seed + len(name))
    z = np.linspace(0.0, 1.0, length)
    return (0.3 + 0.7 * np.exp(-3.0 * z) + 0.01 * rng.standard_normal(length)).astype(np.float64)
