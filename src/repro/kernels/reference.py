"""Numpy reference implementations.

The reference executor evaluates the frontend expression AST directly with
vectorised numpy slicing over the kernel's iteration domain.  It shares only
the AST with the compiler — none of the IR, interpreter or FPGA simulation
code — so agreement between the two paths is a meaningful correctness check
for the whole compilation stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.frontends.builder import StencilKernelBuilder
from repro.frontends.expr import (
    BinOp,
    Constant,
    Expr,
    FieldAccess,
    GridIndex,
    ScalarRef,
    SmallDataAccess,
    UnaryOp,
)
from repro.kernels import pw_advection as pw
from repro.kernels import tracer_advection as tra


def _domain_slice(lower: Sequence[int], upper: Sequence[int], offset: Sequence[int]) -> tuple[slice, ...]:
    return tuple(slice(l + o, u + o) for l, u, o in zip(lower, upper, offset))


def evaluate_expression(
    expr: Expr,
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, float],
    small_data: Mapping[str, np.ndarray],
    lower: Sequence[int],
    upper: Sequence[int],
):
    """Evaluate an expression over the half-open box [lower, upper)."""
    rank = len(lower)
    if isinstance(expr, FieldAccess):
        return arrays[expr.field][_domain_slice(lower, upper, expr.offset)]
    if isinstance(expr, ScalarRef):
        return float(scalars[expr.name])
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, SmallDataAccess):
        profile = small_data[expr.name]
        values = profile[lower[expr.dim] + expr.offset : upper[expr.dim] + expr.offset]
        shape = [1] * rank
        shape[expr.dim] = len(values)
        return values.reshape(shape)
    if isinstance(expr, GridIndex):
        values = np.arange(lower[expr.dim], upper[expr.dim], dtype=np.float64)
        shape = [1] * rank
        shape[expr.dim] = len(values)
        return values.reshape(shape)
    if isinstance(expr, BinOp):
        lhs = evaluate_expression(expr.lhs, arrays, scalars, small_data, lower, upper)
        rhs = evaluate_expression(expr.rhs, arrays, scalars, small_data, lower, upper)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/":
            return lhs / rhs
        if expr.op == "max":
            return np.maximum(lhs, rhs)
        if expr.op == "min":
            return np.minimum(lhs, rhs)
    if isinstance(expr, UnaryOp):
        value = evaluate_expression(expr.operand, arrays, scalars, small_data, lower, upper)
        if expr.op == "neg":
            return -value
        if expr.op == "abs":
            return np.abs(value)
        if expr.op == "sqrt":
            return np.sqrt(value)
        if expr.op == "exp":
            return np.exp(value)
    raise TypeError(f"cannot evaluate expression node {expr!r}")


def run_reference(
    builder: StencilKernelBuilder,
    arrays: dict[str, np.ndarray],
    scalars: Mapping[str, float],
    small_data: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Apply every stencil definition of a builder sequentially (in place)."""
    default_lower, default_upper = builder.default_domain()
    for definition in builder._stencils:
        lower = definition.lower or default_lower
        upper = definition.upper or default_upper
        value = evaluate_expression(
            definition.expression, arrays, scalars, small_data, lower, upper
        )
        target_slice = _domain_slice(lower, upper, (0,) * len(lower))
        arrays[definition.output][target_slice] = value
    return arrays


# ---------------------------------------------------------------------------
# Kernel-specific wrappers
# ---------------------------------------------------------------------------


def pw_advection_reference(
    arrays: dict[str, np.ndarray],
    small_data: Mapping[str, np.ndarray] | None = None,
    scalars: Mapping[str, float] | None = None,
    shape: tuple[int, int, int] | None = None,
) -> dict[str, np.ndarray]:
    """Run the PW advection kernel on numpy arrays (modified in place)."""
    shape = shape or tuple(arrays["u"].shape)
    small_data = small_data if small_data is not None else pw.pw_advection_small_data(shape)
    scalars = scalars if scalars is not None else pw.PW_SCALARS
    builder = pw.pw_advection_builder(shape)
    run_reference(builder, arrays, scalars, small_data)
    return {name: arrays[name] for name in pw.PW_OUTPUT_FIELDS}


def tracer_advection_reference(
    arrays: dict[str, np.ndarray],
    small_data: Mapping[str, np.ndarray] | None = None,
    scalars: Mapping[str, float] | None = None,
    shape: tuple[int, int, int] | None = None,
) -> dict[str, np.ndarray]:
    """Run the tracer advection kernel on numpy arrays (modified in place)."""
    shape = shape or tuple(arrays["tsn"].shape)
    small_data = small_data if small_data is not None else tra.tracer_advection_small_data(shape)
    scalars = scalars if scalars is not None else tra.TRACER_SCALARS
    builder = tra.tracer_advection_builder(shape)
    run_reference(builder, arrays, scalars, small_data)
    return {name: arrays[name] for name in tra.TRACER_WORKSPACE_FIELDS}
