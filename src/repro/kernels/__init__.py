"""Benchmark kernels used in the paper's evaluation.

* :mod:`repro.kernels.pw_advection` — the Piacsek and Williams advection
  scheme (MONC): three stencil computations across three velocity fields,
  with per-level profile arrays as small constant data.
* :mod:`repro.kernels.tracer_advection` — the NEMO tracer advection kernel
  from the PSyclone benchmark suite: 24 chained stencil computations across
  the tracer/workspace fields, 17 memory arguments.
* :mod:`repro.kernels.grids` — the paper's problem sizes and field
  initialisation helpers.
* :mod:`repro.kernels.reference` — independent numpy reference
  implementations used by the correctness tests.
"""

from repro.kernels.grids import (
    PW_ADVECTION_SIZES,
    TRACER_ADVECTION_SIZES,
    ProblemSize,
    initial_fields,
)
from repro.kernels.pw_advection import (
    PW_SCALARS,
    build_pw_advection,
    pw_advection_psyclone_kernel,
)
from repro.kernels.tracer_advection import (
    TRACER_SCALARS,
    build_tracer_advection,
    tracer_advection_stencil_count,
)
from repro.kernels.reference import pw_advection_reference, tracer_advection_reference

__all__ = [
    "PW_ADVECTION_SIZES",
    "PW_SCALARS",
    "ProblemSize",
    "TRACER_ADVECTION_SIZES",
    "TRACER_SCALARS",
    "build_pw_advection",
    "build_tracer_advection",
    "initial_fields",
    "pw_advection_psyclone_kernel",
    "pw_advection_reference",
    "tracer_advection_reference",
    "tracer_advection_stencil_count",
]
