"""The experiment runner regenerating the paper's evaluation.

For every (framework, kernel, problem size) combination the harness builds
the stencil-dialect module at that size, compiles it with the framework's
flow, models one execution on the simulated U280 and records performance
(MPt/s), power, energy, resource utilisation and any failure the framework
exhibits (compilation failure, deadlock, unsupported kernel) — the same
outcomes §4 reports.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, Type

from repro.baselines import (
    ALL_FRAMEWORKS,
    CompilationFailure,
    DeadlockError,
    Framework,
    UnsupportedKernelError,
)
from repro.dialects.builtin import ModuleOp
from repro.evaluation.metrics import FrameworkResult
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES, ProblemSize
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection


@dataclass(frozen=True)
class BenchmarkCase:
    """One kernel at one problem size."""

    kernel: str
    size: ProblemSize

    @property
    def label(self) -> str:
        return f"{self.kernel}/{self.size.label}"


KERNEL_BUILDERS: dict[str, Callable[[tuple[int, int, int]], ModuleOp]] = {
    "pw_advection": build_pw_advection,
    "tracer_advection": build_tracer_advection,
}

KERNEL_SIZES: dict[str, dict[str, ProblemSize]] = {
    "pw_advection": PW_ADVECTION_SIZES,
    "tracer_advection": TRACER_ADVECTION_SIZES,
}

#: Every case evaluated in the paper (Figures 4-6, Tables 1-2).
DEFAULT_CASES: list[BenchmarkCase] = [
    BenchmarkCase("pw_advection", size) for size in PW_ADVECTION_SIZES.values()
] + [
    BenchmarkCase("tracer_advection", size) for size in TRACER_ADVECTION_SIZES.values()
]


@dataclass
class EvaluationHarness:
    """Run frameworks over benchmark cases and collect results."""

    device: FPGADevice = ALVEO_U280
    #: The paper averages every measurement over 10 runs.
    repeats: int = 10
    _module_cache: dict[tuple[str, tuple[int, int, int]], ModuleOp] = field(default_factory=dict)

    # -- module construction -------------------------------------------------------

    def build_module(self, kernel: str, shape: tuple[int, int, int]) -> ModuleOp:
        key = (kernel, tuple(shape))
        if key not in self._module_cache:
            builder = KERNEL_BUILDERS.get(kernel)
            if builder is None:
                raise KeyError(f"unknown kernel '{kernel}' (known: {', '.join(KERNEL_BUILDERS)})")
            self._module_cache[key] = builder(shape)
        return self._module_cache[key]

    # -- single case ------------------------------------------------------------------

    def run_case(self, framework: Framework | Type[Framework], case: BenchmarkCase) -> FrameworkResult:
        if isinstance(framework, type):
            framework = framework(self.device)
        result = FrameworkResult(
            framework=framework.name,
            kernel=case.kernel,
            size_label=case.size.label,
            points=case.size.points,
        )
        module = self.build_module(case.kernel, case.size.shape)
        try:
            artifact = framework.compile(module)
        except UnsupportedKernelError as err:
            result.status = "unsupported"
            result.error = str(err)
            return result
        except CompilationFailure as err:
            result.status = "compile_failed"
            result.error = str(err)
            return result

        result.utilisation = artifact.utilisation()
        result.achieved_ii = artifact.achieved_ii
        result.compute_units = artifact.design.compute_units
        result.notes = list(artifact.notes)
        result.pass_statistics = [
            stat.as_dict() for stat in getattr(artifact, "pass_statistics", [])
        ]

        try:
            runs = [framework.execute(artifact) for _ in range(max(self.repeats, 1))]
        except DeadlockError as err:
            result.status = "deadlock"
            result.error = str(err)
            return result

        runtime_s = statistics.fmean(r.runtime_s for r in runs)
        mpts = statistics.fmean(r.mpts for r in runs)
        timing = runs[0]
        power = artifact.estimate_power(timing)
        result.runtime_s = runtime_s
        result.mpts = mpts
        result.average_power_w = power.average_power_w
        result.energy_j = power.average_power_w * runtime_s
        return result

    # -- sweeps -------------------------------------------------------------------------

    def run_all(
        self,
        frameworks: Sequence[Type[Framework]] | None = None,
        cases: Iterable[BenchmarkCase] | None = None,
    ) -> list[FrameworkResult]:
        frameworks = list(frameworks) if frameworks is not None else list(ALL_FRAMEWORKS)
        cases = list(cases) if cases is not None else list(DEFAULT_CASES)
        results: list[FrameworkResult] = []
        for case in cases:
            for framework_cls in frameworks:
                results.append(self.run_case(framework_cls, case))
        return results

    def cases_for(self, kernel: str, size_labels: Sequence[str] | None = None) -> list[BenchmarkCase]:
        sizes = KERNEL_SIZES[kernel]
        labels = size_labels if size_labels is not None else list(sizes)
        return [BenchmarkCase(kernel, sizes[label]) for label in labels]
