"""The experiment runner regenerating the paper's evaluation.

For every (framework, kernel, problem size, pipeline variant) combination
the harness builds the stencil-dialect module at that size, compiles it
with the framework's flow, models one execution on the simulated U280 and
records performance (MPt/s), power, energy, resource utilisation and any
failure the framework exhibits (compilation failure, deadlock, unsupported
kernel) — the same outcomes §4 reports.

Since the caching/parallel-evaluation rework the harness is a *scenario
matrix* runner:

* :meth:`EvaluationHarness.cases_for` expands a cartesian
  kernel × size × framework × pipeline-variant product into cases;
* :meth:`EvaluationHarness.run_matrix` dispatches the cases over a
  ``concurrent.futures`` process pool (``jobs > 1``) with deterministic
  result ordering — parallel and serial runs produce identical reports;
* a content-addressed :class:`~repro.core.compile_cache.CompileCache`
  (``cache=``) lets fully-evaluated cases be skipped on warm re-runs and
  shares per-stage compile artefacts between cases.
"""

from __future__ import annotations

import statistics
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, Type

from repro.baselines import (
    ALL_FRAMEWORKS,
    CompilationFailure,
    DeadlockError,
    Framework,
    UnsupportedKernelError,
)
from repro.baselines.stencil_hmls import StencilHMLSFramework
from repro.core.compile_cache import CacheKey, CompileCache
from repro.dialects.builtin import ModuleOp
from repro.evaluation.metrics import FrameworkResult
from repro.fpga.device import ALVEO_U280, FPGADevice, device_by_name
from repro.ir.hashing import module_hash
from repro.ir.interning import open_shared_table, publish_intern_table
from repro.ir.pass_registry import canonical_pipeline_spec
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES, ProblemSize
from repro.kernels.pw_advection import build_pw_advection
from repro.kernels.tracer_advection import build_tracer_advection


@dataclass(frozen=True)
class BenchmarkCase:
    """One matrix scenario: a kernel at one problem size, optionally pinned
    to a single framework and/or a named pipeline variant."""

    kernel: str
    size: ProblemSize
    #: ``None`` expands over the frameworks passed to :meth:`run_matrix`.
    framework: str | None = None
    variant: str = "default"

    @property
    def label(self) -> str:
        label = f"{self.kernel}/{self.size.label}"
        if self.framework is not None:
            label += f"/{self.framework}"
        if self.variant != "default":
            label += f"@{self.variant}"
        return label


KERNEL_BUILDERS: dict[str, Callable[[tuple[int, int, int]], ModuleOp]] = {
    "pw_advection": build_pw_advection,
    "tracer_advection": build_tracer_advection,
}

KERNEL_SIZES: dict[str, dict[str, ProblemSize]] = {
    "pw_advection": PW_ADVECTION_SIZES,
    "tracer_advection": TRACER_ADVECTION_SIZES,
}

#: The six stencil→HLS sub-passes spelled out individually.  Ablation
#: variants toggle options on *one* sub-pass, so sweeps over this spelling
#: share long pipeline prefixes — which the compiler's per-pass-prefix
#: artefact cache turns into real reuse (only the toggled suffix re-runs).
STAGED_PIPELINE: str = (
    "canonicalize,stencil-shape-inference,stencil-interface-lowering,"
    "stencil-small-data-buffering,stencil-wave-pipelining,"
    "stencil-compute-split,hls-bundle-assignment,convert-hls-to-llvm"
)


def staged_variant(pass_name: str, **options: object) -> str:
    """The staged pipeline with ``options`` set on one sub-pass.

    ``staged_variant("stencil-wave-pipelining", depth=32)`` renders
    ``...,stencil-wave-pipelining{depth=32},...`` — the canonical way to
    build one point of an ablation axis.

    >>> "stencil-wave-pipelining{depth=32}" in staged_variant(
    ...     "stencil-wave-pipelining", depth=32)
    True
    """
    entries = STAGED_PIPELINE.split(",")
    if pass_name not in entries:
        raise KeyError(f"pass '{pass_name}' is not part of the staged pipeline")
    rendered = ",".join(f"{key}={value}" for key, value in options.items())
    entry = f"{pass_name}{{{rendered}}}" if rendered else pass_name
    return ",".join(entry if name == pass_name else name for name in entries)


#: Named Stencil-HMLS pass-pipeline variants for matrix sweeps.  ``None``
#: means the compiler's default pipeline; baselines model fixed flows, so
#: non-default variants only ever pair with Stencil-HMLS.  The ``ii-*`` /
#: ``depth-*`` / ``width-*`` entries form the ablation-matrix axis over the
#: staged sub-passes; each option lands on its earliest consumer pass (see
#: ``_OPTION_CONSUMER_PHASE`` in the lowering context).
PIPELINE_VARIANTS: dict[str, str | None] = {
    "default": None,
    "no-pack": "canonicalize,convert-stencil-to-hls{pack=0},convert-hls-to-llvm",
    "no-split": "canonicalize,convert-stencil-to-hls{split=0},convert-hls-to-llvm",
    "single-bundle": "canonicalize,convert-stencil-to-hls{bundles=0},convert-hls-to-llvm",
    "staged": STAGED_PIPELINE,
    "ii-2": staged_variant("stencil-interface-lowering", ii=2),
    "ii-4": staged_variant("stencil-interface-lowering", ii=4),
    "width-256": staged_variant("stencil-interface-lowering", width=256),
    "width-1024": staged_variant("stencil-interface-lowering", width=1024),
    "depth-8": staged_variant("stencil-wave-pipelining", depth=8),
    "depth-64": staged_variant("stencil-wave-pipelining", depth=64),
    "single-bundle-staged": staged_variant("hls-bundle-assignment", bundles=0),
}

#: The variant names forming the staged ablation axis, ordered so sweeps
#: maximise shared pipeline prefixes (same-pass toggles are adjacent).
ABLATION_VARIANTS: tuple[str, ...] = (
    "staged",
    "ii-2",
    "ii-4",
    "width-256",
    "width-1024",
    "depth-8",
    "depth-64",
    "single-bundle-staged",
)

FRAMEWORKS_BY_NAME: dict[str, Type[Framework]] = {cls.name: cls for cls in ALL_FRAMEWORKS}

#: Every case evaluated in the paper (Figures 4-6, Tables 1-2).
DEFAULT_CASES: list[BenchmarkCase] = [
    BenchmarkCase("pw_advection", size) for size in PW_ADVECTION_SIZES.values()
] + [
    BenchmarkCase("tracer_advection", size) for size in TRACER_ADVECTION_SIZES.values()
]


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``i/n`` shard selector (1-based) into ``(index, count)``.

    >>> parse_shard("2/4")
    (2, 4)
    >>> parse_shard("5/4")
    Traceback (most recent call last):
        ...
    ValueError: invalid shard '5/4': expected i/n with 1 <= i <= n, e.g. 2/4
    """
    part, sep, total = text.partition("/")
    try:
        index, count = int(part), int(total)
    except ValueError:
        index, count = 0, 0
    if not sep or count < 1 or not (1 <= index <= count):
        raise ValueError(
            f"invalid shard '{text}': expected i/n with 1 <= i <= n, e.g. 2/4"
        )
    return index, count


def select_shard(cases: Sequence[BenchmarkCase], index: int, count: int) -> list[BenchmarkCase]:
    """Deterministic shard ``index`` (1-based) of ``count`` over ``cases``.

    Strided selection over the case-major ordering, so the shards partition
    the matrix exactly and stay balanced across problem sizes.  Results of
    per-shard runs merge back into the full matrix with
    :func:`repro.evaluation.report.merge_result_files`.

    >>> shard1 = select_shard(DEFAULT_CASES, 1, 2)
    >>> shard2 = select_shard(DEFAULT_CASES, 2, 2)
    >>> len(shard1) + len(shard2) == len(DEFAULT_CASES)
    True
    """
    if not (1 <= index <= count):
        raise ValueError(f"shard index {index} out of range 1..{count}")
    return list(cases[index - 1 :: count])


def _resolve_framework_names(
    frameworks: Sequence[Type[Framework] | str] | None,
) -> list[str]:
    if frameworks is None:
        return [cls.name for cls in ALL_FRAMEWORKS]
    names: list[str] = []
    for entry in frameworks:
        name = entry if isinstance(entry, str) else entry.name
        if name not in FRAMEWORKS_BY_NAME:
            raise KeyError(
                f"unknown framework '{name}' (known: {', '.join(FRAMEWORKS_BY_NAME)})"
            )
        names.append(name)
    return names


def expand_matrix_slots(
    cases: Iterable[BenchmarkCase], framework_names: Sequence[str]
) -> list[tuple[BenchmarkCase, str]]:
    """Expand cases into fully-pinned ``(case, framework name)`` slots, in
    deterministic case-major order.

    Cases with ``framework=None`` expand over ``framework_names``; pipeline
    variants describe Stencil-HMLS pass pipelines, so an unpinned
    non-default-variant case never expands to baselines.  This is the one
    expansion rule shared by :meth:`EvaluationHarness.run_matrix` and the
    orchestrator's planner — the two must agree or resume digests would
    never match.
    """
    slots: list[tuple[BenchmarkCase, str]] = []
    for case in cases:
        if case.framework is not None:
            pinned = [case.framework]
        else:
            pinned = [
                name
                for name in framework_names
                if case.variant == "default" or name == StencilHMLSFramework.name
            ]
            if not pinned:
                raise ValueError(
                    f"case {case.label}: pipeline variant '{case.variant}' needs "
                    f"{StencilHMLSFramework.name}, which is not in the framework "
                    f"selection ({', '.join(framework_names)})"
                )
        for name in pinned:
            if name not in FRAMEWORKS_BY_NAME:
                raise KeyError(
                    f"unknown framework '{name}' (known: {', '.join(FRAMEWORKS_BY_NAME)})"
                )
            slots.append((case, name))
    return slots


#: Per-worker-process memo of shared intern tables already opened; a
#: worker opens each table path once, not once per case payload.
_WORKER_TABLES: dict[str, bool] = {}


def _ensure_worker_intern_table(path: str) -> bool:
    """Open (once per process) the shared intern table a payload names.

    A missing or unreadable table degrades to per-process interning —
    the worker must never die because the parent's table is stale.
    """
    opened = _WORKER_TABLES.get(path)
    if opened is None:
        opened = open_shared_table(path) is not None
        _WORKER_TABLES[path] = opened
    return opened


def _run_case_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Process-pool worker: evaluate one fully-pinned case.

    Takes and returns plain dicts so payloads cross process boundaries
    cheaply.  Workers never touch the parent's ``result`` stage (the
    parent stores results, so no cross-process locking is needed), but a
    disk-backed cache directory *is* shared: its writes are atomic, so
    pool workers reuse each other's ``pass-prefix``/``middle-end``/
    ``synthesis`` artefacts — without this, ``jobs > 1`` would silently
    recompile everything prefix-aware scheduling set up to share.  A
    payload may also name a shared intern table (``intern_table``): the
    worker opens it read-only so unpickled attributes resolve against
    the parent's published canonical records instead of re-interning.
    """
    table_path = payload.get("intern_table")
    if table_path:
        _ensure_worker_intern_table(table_path)
    cache_dir = payload.get("cache_dir")
    remote_cache_dir = payload.get("remote_cache_dir")
    harness = EvaluationHarness(
        device=device_by_name(payload["device"]),
        repeats=payload["repeats"],
        cache=(
            CompileCache(
                cache_dir,
                remote_dir=remote_cache_dir,
                fmt=payload.get("cache_format", "pickle"),
            )
            if cache_dir or remote_cache_dir
            else None
        ),
    )
    case = BenchmarkCase(
        kernel=payload["kernel"],
        # Rebuilt from label+shape (not a KERNEL_SIZES lookup) so custom
        # ProblemSizes evaluate identically in serial and parallel runs.
        size=ProblemSize(payload["size"], tuple(payload["shape"])),
        framework=payload["framework"],
        variant=payload.get("variant", "default"),
    )
    result = harness.run_case(FRAMEWORKS_BY_NAME[payload["framework"]], case)
    return result.as_dict()


@dataclass
class EvaluationHarness:
    """Run frameworks over benchmark cases and collect results.

    Case expansion is pure and cheap; evaluation happens in
    :meth:`run_matrix`:

    >>> harness = EvaluationHarness(repeats=1)
    >>> cases = harness.cases_for("pw_advection", ["8M"],
    ...                           frameworks=["Stencil-HMLS"],
    ...                           variants=["staged", "depth-8"])
    >>> [case.label for case in cases]
    ['pw_advection/8M/Stencil-HMLS@staged', 'pw_advection/8M/Stencil-HMLS@depth-8']
    """

    device: FPGADevice = ALVEO_U280
    #: The paper averages every measurement over 10 runs.
    repeats: int = 10
    #: Optional content-addressed cache: whole-case results are reused on
    #: warm runs and compile artefacts are shared between cases.
    cache: CompileCache | None = None
    #: Default process-pool width for :meth:`run_matrix` (1 = in-process).
    jobs: int = 1
    #: Optional shared intern table directory: published (parent) before a
    #: pool dispatch and opened read-only by every worker, so workers
    #: warm-start their attribute interner from the parent's canonical
    #: records instead of reconstructing and re-hashing each one.
    intern_table: str | None = None
    _module_cache: dict[tuple[str, tuple[int, int, int]], ModuleOp] = field(default_factory=dict)
    _hash_cache: dict[tuple[str, tuple[int, int, int]], str] = field(default_factory=dict)
    #: The compile service shares one harness between its event loop and
    #: its compile-executor threads; the module/hash memos mutate under
    #: this lock so a concurrent request can never observe (or race to
    #: fill) a half-built entry.
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    # -- module construction -------------------------------------------------------

    def build_module(self, kernel: str, shape: tuple[int, int, int]) -> ModuleOp:
        key = (kernel, tuple(shape))
        with self._lock:
            if key not in self._module_cache:
                builder = KERNEL_BUILDERS.get(kernel)
                if builder is None:
                    raise KeyError(f"unknown kernel '{kernel}' (known: {', '.join(KERNEL_BUILDERS)})")
                self._module_cache[key] = builder(shape)
            return self._module_cache[key]

    def module_hash_for(self, kernel: str, shape: tuple[int, int, int]) -> str:
        key = (kernel, tuple(shape))
        with self._lock:
            if key not in self._hash_cache:
                self._hash_cache[key] = module_hash(self.build_module(kernel, shape))
            return self._hash_cache[key]

    # -- single case ------------------------------------------------------------------

    def _framework_instance(
        self, framework: Framework | Type[Framework], case: BenchmarkCase
    ) -> Framework:
        variant_spec = PIPELINE_VARIANTS.get(case.variant, case.variant)
        if isinstance(framework, type):
            if issubclass(framework, StencilHMLSFramework):
                return framework(
                    self.device, pass_pipeline=variant_spec, cache=self.cache
                )
            framework = framework(self.device)
        if case.variant != "default":
            if not isinstance(framework, StencilHMLSFramework):
                raise ValueError(
                    f"pipeline variant '{case.variant}' only applies to Stencil-HMLS, "
                    f"not {framework.name}"
                )
            if framework.pass_pipeline != variant_spec:
                # Refuse rather than silently mislabel: the instance would run
                # its own pipeline while the result claims `case.variant`.
                raise ValueError(
                    f"framework instance runs pipeline {framework.pass_pipeline!r}, "
                    f"which is not variant '{case.variant}' ({variant_spec!r}); "
                    "pass the framework class to let the harness apply the variant"
                )
        return framework

    def run_case(self, framework: Framework | Type[Framework], case: BenchmarkCase) -> FrameworkResult:
        framework = self._framework_instance(framework, case)
        result = FrameworkResult(
            framework=framework.name,
            kernel=case.kernel,
            size_label=case.size.label,
            points=case.size.points,
            variant=case.variant,
        )
        module = self.build_module(case.kernel, case.size.shape)
        try:
            artifact = framework.compile(module)
        except UnsupportedKernelError as err:
            result.status = "unsupported"
            result.error = str(err)
            return result
        except CompilationFailure as err:
            result.status = "compile_failed"
            result.error = str(err)
            return result

        result.utilisation = artifact.utilisation()
        result.achieved_ii = artifact.achieved_ii
        result.compute_units = artifact.design.compute_units
        result.notes = list(artifact.notes)
        result.pass_statistics = [
            stat.as_dict() for stat in getattr(artifact, "pass_statistics", [])
        ]

        try:
            runs = [framework.execute(artifact) for _ in range(max(self.repeats, 1))]
        except DeadlockError as err:
            result.status = "deadlock"
            result.error = str(err)
            return result

        runtime_s = statistics.fmean(r.runtime_s for r in runs)
        mpts = statistics.fmean(r.mpts for r in runs)
        timing = runs[0]
        power = artifact.estimate_power(timing)
        result.runtime_s = runtime_s
        result.mpts = mpts
        result.average_power_w = power.average_power_w
        result.energy_j = power.average_power_w * runtime_s
        return result

    # -- caching ------------------------------------------------------------------------

    def result_key(self, case: BenchmarkCase, framework_name: str | None = None) -> CacheKey:
        """Content address of one fully-evaluated case (the ``result`` stage).

        This is the key the orchestrator's resumability manifest records:
        a case whose digest is already in the manifest restarts with zero
        recompiles.  ``framework_name`` defaults to the case's own pin.

        >>> from repro.kernels.grids import PW_ADVECTION_SIZES
        >>> harness = EvaluationHarness(repeats=1)
        >>> case = BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"])
        >>> key = harness.result_key(case, "Vitis")
        >>> "framework=Vitis" in key.extra and len(key.digest("result")) == 64
        True
        """
        if framework_name is None:
            if case.framework is None:
                raise ValueError(
                    f"case {case.label} is not pinned to a framework; pass "
                    "framework_name explicitly"
                )
            framework_name = case.framework
        variant_spec = PIPELINE_VARIANTS.get(case.variant, case.variant)
        pipeline = ""
        if framework_name == StencilHMLSFramework.name:
            # Embed the full canonicalised pipeline + options of the variant:
            # `…{pack=0}` and `…{pack=1}` sweeps must never share an entry.
            from repro.core.pipeline import StencilHMLSCompiler

            spec = variant_spec or StencilHMLSCompiler().default_pipeline()
            pipeline = canonical_pipeline_spec(spec)
        return CacheKey(
            module_hash=self.module_hash_for(case.kernel, case.size.shape),
            pipeline=pipeline,
            extra=(
                f"framework={framework_name}|variant={case.variant}"
                f"|device={self.device.name}|repeats={max(self.repeats, 1)}"
            ),
        )

    # -- sweeps -------------------------------------------------------------------------

    def run_matrix(
        self,
        cases: Iterable[BenchmarkCase] | None = None,
        frameworks: Sequence[Type[Framework] | str] | None = None,
        *,
        jobs: int | None = None,
        on_result: Callable[[BenchmarkCase, str, FrameworkResult, bool], None] | None = None,
    ) -> list[FrameworkResult]:
        """Evaluate a scenario matrix, optionally in parallel and cached.

        Cases with ``framework=None`` expand over ``frameworks`` (all five
        by default).  Results come back in deterministic case-major order
        regardless of ``jobs`` or cache state.

        ``on_result(case, framework_name, result, cached)`` fires once per
        completed case *while the matrix is still running* — cache-served
        cases first (``cached=True``), then fresh evaluations as they
        finish — which is how the orchestrator and ``report.py --stream``
        publish incremental JSONL progress events.
        """
        cases = list(cases) if cases is not None else list(DEFAULT_CASES)
        framework_names = _resolve_framework_names(frameworks)
        jobs = self.jobs if jobs is None else jobs

        # 1. Expand the matrix into fully-pinned slots, in deterministic order.
        slots = expand_matrix_slots(cases, framework_names)

        # 2. Cache-aware skipping: fill whole-case hits straight from the cache.
        results: list[FrameworkResult | None] = [None] * len(slots)
        keys: list[CacheKey | None] = [None] * len(slots)
        pending: list[int] = []
        for index, (case, name) in enumerate(slots):
            if self.cache is not None:
                keys[index] = self.result_key(case, name)
                payload = self.cache.get(keys[index], "result")
                if payload is not None:
                    results[index] = FrameworkResult.from_dict(payload)
                    if on_result is not None:
                        on_result(case, name, results[index], True)
                    continue
            pending.append(index)

        # 3. Evaluate the misses — in-process, or over a process pool.
        # Either way results are published through ``on_result`` as they
        # complete (``pool.map`` yields lazily in submission order).
        if jobs > 1 and len(pending) > 1:
            if self.intern_table is not None:
                # Warm-start the pool: build every pending module in the
                # parent (populating the interner with the full attribute
                # working set) and publish the canonical records, so each
                # worker opens the table instead of re-interning cold.
                for i in pending:
                    self.build_module(slots[i][0].kernel, slots[i][0].size.shape)
                publish_intern_table(self.intern_table)
            payloads = [
                {
                    "kernel": slots[i][0].kernel,
                    "size": slots[i][0].size.label,
                    "shape": list(slots[i][0].size.shape),
                    "framework": slots[i][1],
                    "variant": slots[i][0].variant,
                    "device": self.device.name,
                    "repeats": self.repeats,
                    "intern_table": self.intern_table,
                    "cache_format": self.cache.fmt if self.cache is not None else "pickle",
                    "cache_dir": (
                        str(self.cache.cache_dir)
                        if self.cache is not None and self.cache.cache_dir is not None
                        else None
                    ),
                    "remote_cache_dir": (
                        str(self.cache.remote_dir)
                        if self.cache is not None and self.cache.remote_dir is not None
                        else None
                    ),
                }
                for i in pending
            ]
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                for index, payload in zip(pending, pool.map(_run_case_payload, payloads)):
                    results[index] = FrameworkResult.from_dict(payload)
                    if on_result is not None:
                        case, name = slots[index]
                        on_result(case, name, results[index], False)
        else:
            for index in pending:
                case, name = slots[index]
                results[index] = self.run_case(FRAMEWORKS_BY_NAME[name], case)
                if on_result is not None:
                    on_result(case, name, results[index], False)

        # 4. Store fresh results for the next warm run.
        if self.cache is not None:
            for index in pending:
                key = keys[index]
                if key is not None:
                    self.cache.put(key, "result", results[index].as_dict())

        return [result for result in results if result is not None]

    def run_all(
        self,
        frameworks: Sequence[Type[Framework]] | None = None,
        cases: Iterable[BenchmarkCase] | None = None,
        *,
        jobs: int | None = None,
    ) -> list[FrameworkResult]:
        return self.run_matrix(cases=cases, frameworks=frameworks, jobs=jobs)

    def cases_for(
        self,
        kernels: str | Sequence[str] | None = None,
        sizes: Sequence[str] | None = None,
        frameworks: Sequence[Type[Framework] | str] | None = None,
        variants: Sequence[str] | None = None,
    ) -> list[BenchmarkCase]:
        """Cartesian kernel × size × framework × variant case expansion.

        With only ``kernels``/``sizes`` given this returns unpinned cases
        (one per kernel × size, the historical behaviour).  Passing
        ``frameworks``/``variants`` pins each case; non-default pipeline
        variants pair only with Stencil-HMLS, since the baselines model
        fixed flows.
        """
        if isinstance(kernels, str):
            kernels = [kernels]
        kernel_list = list(kernels) if kernels is not None else list(KERNEL_BUILDERS)
        framework_names: list[str | None]
        if frameworks is None:
            framework_names = [None]
        else:
            framework_names = list(_resolve_framework_names(frameworks))
        variant_list = list(variants) if variants is not None else ["default"]
        for variant in variant_list:
            if variant not in PIPELINE_VARIANTS:
                raise KeyError(
                    f"unknown pipeline variant '{variant}' "
                    f"(known: {', '.join(PIPELINE_VARIANTS)})"
                )

        expanded: list[BenchmarkCase] = []
        for kernel in kernel_list:
            if kernel not in KERNEL_SIZES:
                raise KeyError(
                    f"unknown kernel '{kernel}' (known: {', '.join(KERNEL_SIZES)})"
                )
            size_table = KERNEL_SIZES[kernel]
            labels = list(sizes) if sizes is not None else list(size_table)
            for label in labels:
                if label not in size_table:
                    raise KeyError(
                        f"unknown problem size '{label}' for {kernel} "
                        f"(known: {', '.join(size_table)})"
                    )
                for name in framework_names:
                    for variant in variant_list:
                        if variant != "default" and name not in (
                            None,
                            StencilHMLSFramework.name,
                        ):
                            continue
                        expanded.append(
                            BenchmarkCase(kernel, size_table[label], name, variant)
                        )
        return expanded
