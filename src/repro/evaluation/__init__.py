"""Evaluation harness: metrics, experiment runner, figure and table regeneration."""

from repro.evaluation.metrics import FrameworkResult, megapoints_per_second
from repro.evaluation.harness import BenchmarkCase, EvaluationHarness, DEFAULT_CASES
from repro.evaluation.figures import figure4_performance, figure5_pw_power_energy, figure6_tracer_power_energy
from repro.evaluation.tables import table1_pw_resources, table2_tracer_resources
from repro.evaluation.report import format_figure, format_table, generate_all, results_to_json

__all__ = [
    "BenchmarkCase",
    "DEFAULT_CASES",
    "EvaluationHarness",
    "FrameworkResult",
    "figure4_performance",
    "figure5_pw_power_energy",
    "figure6_tracer_power_energy",
    "format_figure",
    "format_table",
    "generate_all",
    "megapoints_per_second",
    "results_to_json",
    "table1_pw_resources",
    "table2_tracer_resources",
]
