"""Distributed shard orchestrator for the scenario matrix.

``shmls-orchestrate`` (or ``python -m repro.evaluation.orchestrator``) is
the driver the ROADMAP names as the unlock for multi-machine scale: it
plans the full scenario matrix once, orders the cases for maximal
pass-prefix-cache sharing, fans the resulting shards out through a
pluggable :class:`ShardLauncher`, streams per-case results over a JSONL
event channel while the shards are still running, and merges the shard
artefacts into the usual deterministic report.

The pieces, in pipeline order:

* **Planning** — :func:`plan_matrix` expands cases (pinning frameworks the
  same way :meth:`EvaluationHarness.run_matrix` does), drops cases already
  recorded in the resumability manifest, orders the remainder with
  :func:`order_for_prefix_sharing` and cuts the ordering into contiguous
  shards with :func:`split_shards` so ablation sweeps that share a
  pipeline prefix land on the *same* shard (where the per-pass-prefix
  artefact cache can actually reuse them).
* **Launching** — :class:`LocalLauncher` runs shards in-process (tests,
  single machines); :class:`SubprocessLauncher` spawns one
  ``--run-shard`` worker process per shard; :class:`RemoteLauncher` fans
  the same worker argv out over a machine list through a command
  template (``ssh {host} -- {argv}`` being the canonical instance).
  Process-based launchers capture each worker's stdout/stderr into
  ``state_dir/shard<i>.log``.  ``--dry-run`` prints the plan (with the
  predicted prefix-reuse depth per shard) and exits.
* **Fault tolerance** — the fleet loop (:func:`run_fleet`, driven by
  :func:`orchestrate`) retries dead workers with backoff, kills
  stragglers that stop making manifest progress for
  ``--straggler-timeout`` seconds, and *work-steals*: the unfinished
  cases of a dead or straggling shard — computed from the resumability
  manifests' result-stage :class:`CacheKey` digests — are re-queued as
  fresh shards on the surviving capacity, so a ``kill -9`` mid-sweep
  still converges to a merged report byte-identical to a serial run,
  with zero recompiles of already-manifested cases.
* **Streaming** — every shard appends ``case_finished`` events to its own
  ``events-shard<i>.jsonl``; the orchestrator tails those files while the
  pool runs and forwards them to its own event sink (``--events`` /
  ``--stream``).
* **Resuming** — each completed case is appended to
  ``manifest-shard<i>.jsonl`` keyed by its *result-stage compile-cache
  digest* (:meth:`EvaluationHarness.result_key`), so a killed sweep
  restarts with zero recompiles: planned cases whose digest is already in
  a manifest are served from the manifest, never re-launched.
* **Merging** — the final report is
  :func:`repro.evaluation.report.merge_results` over every manifest
  entry: byte-identical to a single-process run's merged report.

Doctest — planning is pure and cheap enough to inspect directly::

    >>> from repro.evaluation.orchestrator import plan_matrix
    >>> plan = plan_matrix(shards=2, variants=["staged", "depth-8"],
    ...                    kernels=["pw_advection"], sizes=["8M"],
    ...                    frameworks=["Stencil-HMLS"])
    >>> [len(shard.cases) for shard in plan.shards]
    [1, 1]
"""

from __future__ import annotations

import argparse
import json
import os
import shlex
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, TextIO

from repro.baselines.stencil_hmls import StencilHMLSFramework
from repro.core.compile_cache import CACHE_FORMATS, CompileCache
from repro.evaluation.harness import (
    DEFAULT_CASES,
    PIPELINE_VARIANTS,
    BenchmarkCase,
    EvaluationHarness,
    _resolve_framework_names,
    expand_matrix_slots,
)
from repro.evaluation.metrics import FrameworkResult
from repro.evaluation.report import merge_results, results_to_json, _deterministic_entry
from repro.fpga.device import ALVEO_U280, device_by_name
from repro.ir.interning import open_shared_table, publish_intern_table
from repro.ir.pass_registry import _split_top_level, canonical_pipeline_spec
from repro.kernels.grids import ProblemSize


# ---------------------------------------------------------------------------
# Case (de)serialisation
# ---------------------------------------------------------------------------


def case_to_dict(case: BenchmarkCase) -> dict[str, Any]:
    """A :class:`BenchmarkCase` as a JSON-safe dict (label *and* shape, so
    custom problem sizes survive the round-trip)."""
    return {
        "kernel": case.kernel,
        "size": case.size.label,
        "shape": list(case.size.shape),
        "framework": case.framework,
        "variant": case.variant,
    }


def case_from_dict(entry: dict[str, Any]) -> BenchmarkCase:
    """Inverse of :func:`case_to_dict`.

    >>> from repro.evaluation.harness import DEFAULT_CASES
    >>> case_from_dict(case_to_dict(DEFAULT_CASES[0])) == DEFAULT_CASES[0]
    True
    """
    return BenchmarkCase(
        kernel=entry["kernel"],
        size=ProblemSize(entry["size"], tuple(entry["shape"])),
        framework=entry.get("framework"),
        variant=entry.get("variant", "default"),
    )


# ---------------------------------------------------------------------------
# Prefix-aware scheduling
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _canonical_variant_spec(variant: str) -> str:
    """Canonical spec of one named variant (memoised: planning evaluates
    it O(case pairs) times over a handful of distinct variants)."""
    spec = PIPELINE_VARIANTS.get(variant, variant)
    if spec is None:
        from repro.core.pipeline import StencilHMLSCompiler

        spec = StencilHMLSCompiler().default_pipeline()
    return canonical_pipeline_spec(spec)


def case_pipeline_spec(case: BenchmarkCase) -> str | None:
    """Canonicalised pass-pipeline spec of a pinned case (``None`` for
    baseline frameworks, which model fixed flows without a pipeline)."""
    if case.framework != StencilHMLSFramework.name:
        return None
    return _canonical_variant_spec(case.variant)


def shared_prefix_depth(case_a: BenchmarkCase, case_b: BenchmarkCase) -> int:
    """How many leading pipeline passes two cases can share through the
    ``pass-prefix`` artefact cache when they run on the same shard.

    Zero unless both cases compile the *same module* (kernel and size)
    with Stencil-HMLS; otherwise the length of the common prefix of their
    canonical pipeline specs, counted in passes.
    """
    if (case_a.kernel, case_a.size) != (case_b.kernel, case_b.size):
        return 0
    spec_a, spec_b = case_pipeline_spec(case_a), case_pipeline_spec(case_b)
    if spec_a is None or spec_b is None:
        return 0
    # Compare rendered entries (name + effective options), not just names:
    # interface-lowering{ii=2} and {ii=4} diverge at that pass.
    depth = 0
    for left, right in zip(_rendered_entries(spec_a), _rendered_entries(spec_b)):
        if left != right:
            break
        depth += 1
    return depth


@lru_cache(maxsize=None)
def _rendered_entries(spec: str) -> tuple[str, ...]:
    """A canonical spec's per-pass rendered entries (the registry's
    brace-aware splitter, memoised per distinct spec)."""
    return tuple(_split_top_level(spec))


def _prefix_sort_key(case: BenchmarkCase) -> tuple:
    spec = case_pipeline_spec(case)
    return (
        0 if spec is not None else 1,        # Stencil-HMLS sweeps first …
        case.kernel,
        case.size.label,                     # … grouped per module …
        spec or "",                          # … clustered by spec prefix
        case.framework or "",
        case.variant,
    )


def order_for_prefix_sharing(cases: Sequence[BenchmarkCase]) -> list[BenchmarkCase]:
    """Order cases so runs sharing long pipeline prefixes are adjacent.

    Lexicographic ordering of canonical specs *is* the trie ordering: two
    specs sharing a longer prefix sort closer together, so a contiguous
    shard cut keeps ablation families (``ii-2``/``ii-4``, ``depth-*``)
    on one worker where the ``pass-prefix`` cache can reuse their shared
    upstream passes.  Baseline-framework cases carry no pipeline and sort
    after the Stencil-HMLS sweeps.
    """
    return sorted(cases, key=_prefix_sort_key)


def split_shards(cases: Sequence[BenchmarkCase], count: int) -> list[list[BenchmarkCase]]:
    """Cut an ordered case list into ``count`` contiguous, balanced shards,
    greedily placing each cut where neighbouring cases share the *least*
    pipeline prefix (so prefix families are not torn apart).

    Shard sizes stay within one case of the even split; empty shards only
    appear when there are fewer cases than shards.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    cases = list(cases)
    if count == 1:
        return [cases]
    if len(cases) <= count:
        return [[case] for case in cases] + [[] for _ in range(count - len(cases))]
    affinity = [
        shared_prefix_depth(cases[i], cases[i + 1]) for i in range(len(cases) - 1)
    ]
    base, extra = divmod(len(cases), count)
    # Even-split boundary targets; each may shift by at most one position
    # towards a lower-affinity cut without unbalancing the shards.
    boundaries: list[int] = []
    position = 0
    for index in range(count - 1):
        position += base + (1 if index < extra else 0)
        boundaries.append(position)
    adjusted: list[int] = []
    for index, boundary in enumerate(boundaries):
        lower = (adjusted[-1] + 1) if adjusted else 1
        # Leave at least one case for every remaining shard, so no shift
        # can starve a later boundary of legal positions.
        upper = len(cases) - (count - 1 - index)
        candidates = [
            b for b in (boundary - 1, boundary, boundary + 1)
            if lower <= b <= upper
        ]
        # Non-empty by construction: lower <= boundary+1 (each earlier
        # boundary shifts at most +1 off targets that are >= 1 apart),
        # boundary <= upper, and lower <= upper — so boundary or
        # boundary+1 always lies in [lower, upper].
        assert candidates, (boundary, lower, upper)
        best = min(candidates, key=lambda b: (affinity[b - 1], abs(b - boundary), b))
        adjusted.append(best)
    shards = []
    start = 0
    for boundary in adjusted + [len(cases)]:
        shards.append(cases[start:boundary])
        start = boundary
    return shards


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


@dataclass
class ShardPlan:
    """One shard of the orchestrated matrix."""

    index: int                       #: 1-based shard number
    cases: list[BenchmarkCase]

    @property
    def prefix_reuse_depth(self) -> int:
        """Predicted pass-prefix reuse: total shared-prefix passes between
        consecutive cases of this shard."""
        return sum(
            shared_prefix_depth(a, b) for a, b in zip(self.cases, self.cases[1:])
        )


@dataclass
class OrchestrationPlan:
    """Everything the launcher needs, plus what the resume skipped."""

    shards: list[ShardPlan]
    #: (case, manifest result entry) pairs restored instead of re-launched.
    resumed: list[tuple[BenchmarkCase, dict[str, Any]]] = field(default_factory=list)
    order: str = "prefix"

    @property
    def planned_cases(self) -> int:
        return sum(len(shard.cases) for shard in self.shards)

    def describe(self) -> str:
        """Human-readable dry-run plan."""
        lines = [
            f"orchestration plan: {self.planned_cases} case(s) over "
            f"{len(self.shards)} shard(s), order={self.order}, "
            f"{len(self.resumed)} resumed from manifest"
        ]
        for shard in self.shards:
            lines.append(
                f"  shard {shard.index}: {len(shard.cases)} case(s), "
                f"predicted prefix reuse {shard.prefix_reuse_depth} pass(es)"
            )
            for case in shard.cases:
                framework = case.framework or "<all>"
                lines.append(f"    {case.kernel}/{case.size.label}/{framework}@{case.variant}")
        return "\n".join(lines)


def lint_plan(plan: OrchestrationPlan, device_name: str = ALVEO_U280.name) -> int:
    """Lint every planned case and flag the doomed ones (``--dry-run``).

    Cases are deduplicated by (kernel, size, variant) — the framework pin
    changes only the performance model, not what gets compiled — and
    share one :class:`~repro.ir.analysis.AnalysisManager`, so per-kernel
    dataflow analyses are computed once per module fingerprint no matter
    how many variants reuse it.  Returns 2 when any case is doomed (lint
    errors), 1 for warnings only, 0 when the whole plan lints clean.
    """
    from repro.ir.analysis import AnalysisManager
    from repro.tools.lint import lint_benchmark_case

    device = device_by_name(device_name)
    analyses = AnalysisManager()
    seen: dict[tuple[str, str, str], Any] = {}
    for shard in plan.shards:
        for case in shard.cases:
            key = (case.kernel, case.size.label, case.variant)
            if key not in seen:
                seen[key] = lint_benchmark_case(
                    case.kernel, case.size.label, case.variant,
                    device, analyses=analyses,
                )
    doomed: list[str] = []
    warned = False
    for (kernel, size, variant), engine in seen.items():
        label = f"{kernel}/{size}@{variant}"
        if engine.has_errors:
            doomed.append(label)
        warned = warned or engine.has_warnings
        for line in engine.render_lines():
            print(f"  lint {label}: {line}")
    if doomed:
        print(
            f"lint: {len(doomed)} doomed case(s) out of {len(seen)} unique: "
            + ", ".join(doomed)
        )
        return 2
    print(f"lint: {len(seen)} unique case(s), none doomed")
    return 1 if warned else 0


def pin_cases(
    cases: Iterable[BenchmarkCase],
    frameworks: Sequence[str] | None = None,
) -> list[BenchmarkCase]:
    """Expand unpinned cases over ``frameworks`` exactly like
    :meth:`EvaluationHarness.run_matrix` does (same shared
    :func:`expand_matrix_slots` rule and framework defaulting), returning
    fully-pinned cases.
    """
    return [
        BenchmarkCase(case.kernel, case.size, name, case.variant)
        for case, name in expand_matrix_slots(
            cases, _resolve_framework_names(frameworks)
        )
    ]


def plan_matrix(
    cases: Iterable[BenchmarkCase] | None = None,
    *,
    shards: int = 1,
    order: str = "prefix",
    frameworks: Sequence[str] | None = None,
    kernels: Sequence[str] | None = None,
    sizes: Sequence[str] | None = None,
    variants: Sequence[str] | None = None,
    completed: dict[str, dict[str, Any]] | None = None,
    harness: EvaluationHarness | None = None,
) -> OrchestrationPlan:
    """Plan the orchestrated matrix.

    ``cases`` defaults to the paper matrix (or a cartesian
    kernel × size × framework × variant expansion when ``kernels`` /
    ``variants`` are given).  ``completed`` maps result-stage cache-key
    digests to manifest entries; matching cases are resumed, not planned.
    ``order`` is ``prefix`` (prefix-aware, the default) or ``case``
    (legacy case-major strided sharding, for comparison).
    """
    if order not in ("prefix", "case"):
        raise ValueError(f"unknown order '{order}' (use 'prefix' or 'case')")
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    harness = harness or EvaluationHarness(repeats=1)
    if cases is None:
        if kernels is not None or variants is not None or sizes is not None:
            cases = harness.cases_for(kernels=kernels, sizes=sizes, variants=variants)
        else:
            cases = DEFAULT_CASES
    pinned = pin_cases(cases, frameworks)

    resumed: list[tuple[BenchmarkCase, dict[str, Any]]] = []
    todo: list[BenchmarkCase] = []
    for case in pinned:
        entry = None
        if completed:
            digest = harness.result_key(case).digest("result")
            entry = completed.get(digest)
        if entry is not None:
            resumed.append((case, entry))
        else:
            todo.append(case)

    if order == "prefix":
        ordered = order_for_prefix_sharing(todo)
        chunks = split_shards(ordered, shards)
    else:
        chunks = [todo[i::shards] for i in range(shards)]
    return OrchestrationPlan(
        shards=[ShardPlan(i + 1, chunk) for i, chunk in enumerate(chunks)],
        resumed=resumed,
        order=order,
    )


# ---------------------------------------------------------------------------
# JSONL event channel
# ---------------------------------------------------------------------------


class EventWriter:
    """Append-only JSONL event sink: a file path, any text stream, or both
    (``echo=True`` additionally prints every event to stdout)."""

    def __init__(
        self, target: str | Path | TextIO | None, *, echo: bool = False
    ) -> None:
        self._path: Path | None = None
        self._stream: TextIO | None = None
        self.echo = echo
        if target is None:
            pass
        elif isinstance(target, (str, Path)):
            self._path = Path(target)
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._path.write_text("")
        else:
            self._stream = target

    def emit(self, event: str, **payload: Any) -> dict[str, Any]:
        record = {"event": event, **payload}
        # UTF-8 JSONL: non-ASCII kernel/variant names stream as themselves
        # (the forwarder tails in binary and counts byte offsets).
        line = json.dumps(record, sort_keys=True, ensure_ascii=False)
        if self._path is not None:
            with self._path.open("a") as handle:
                handle.write(line + "\n")
                handle.flush()
        if self._stream is not None:
            self._stream.write(line + "\n")
            self._stream.flush()
        if self.echo:
            print(line, flush=True)
        return record


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """All events of one JSONL file (missing file = no events yet)."""
    try:
        text = Path(path).read_text()
    except OSError:
        return []
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # a partially-written trailing line; the next poll gets it
    return events


class _EventForwarder:
    """Incrementally tail shard event files into the orchestrator's sink.

    Files are read in *binary* and offsets advanced in *bytes*: a
    text-mode tail that seeks byte offsets but advances by ``len(line)``
    in characters desyncs on the first non-ASCII kernel/variant name and
    corrupts or drops every later event.
    """

    def __init__(self, paths: Sequence[Path], sink: EventWriter) -> None:
        self.paths = list(paths)
        self.sink = sink
        self._offsets = {path: 0 for path in self.paths}

    def add_path(self, path: Path) -> None:
        """Start tailing another event file (a re-queued shard's stream)."""
        if path not in self._offsets:
            self.paths.append(path)
            self._offsets[path] = 0

    def poll(self) -> int:
        forwarded = 0
        for path in self.paths:
            try:
                with path.open("rb") as handle:
                    handle.seek(self._offsets[path])
                    chunk = handle.read()
            except OSError:
                continue
            if not chunk:
                continue
            consumed = 0
            for line in chunk.splitlines(keepends=True):
                if not line.endswith(b"\n"):
                    break  # incomplete trailing write; re-read next poll
                consumed += len(line)
                try:
                    text = line.decode("utf-8").strip()
                except UnicodeDecodeError:
                    continue  # a corrupt line; skip it but keep the offset honest
                if text:
                    try:
                        record = json.loads(text)
                    except json.JSONDecodeError:
                        continue
                    self.sink.emit(record.pop("event", "unknown"), **record)
                    forwarded += 1
            self._offsets[path] += consumed
        return forwarded


# ---------------------------------------------------------------------------
# Shard execution (worker side)
# ---------------------------------------------------------------------------

#: Exit code of a shard that stopped before finishing all its cases.
EXIT_INTERRUPTED = 3


def _manifest_path(state_dir: Path, shard_index: int) -> Path:
    return state_dir / f"manifest-shard{shard_index}.jsonl"


def load_manifest(state_dir: str | Path) -> dict[str, dict[str, Any]]:
    """The resumability manifest: result-key digest → manifest entry, merged
    over every ``manifest-shard*.jsonl`` in the state directory."""
    completed: dict[str, dict[str, Any]] = {}
    for path in sorted(Path(state_dir).glob("manifest-shard*.jsonl")):
        for entry in read_events(path):
            digest = entry.get("digest")
            if digest and "result" in entry:
                completed[digest] = entry
    return completed


def shard_spec(
    shard: ShardPlan,
    *,
    state_dir: Path,
    device: str = ALVEO_U280.name,
    repeats: int = 1,
    jobs: int = 1,
    cache_dir: str | None = None,
    remote_cache_dir: str | None = None,
    cache_max_bytes: int | None = None,
    cache_format: str = "pickle",
    intern_table: str | None = None,
    max_cases: int | None = None,
) -> dict[str, Any]:
    """The JSON-safe job description one shard worker executes."""
    return {
        "shard": shard.index,
        "cases": [case_to_dict(case) for case in shard.cases],
        "device": device,
        "repeats": repeats,
        "jobs": jobs,
        "cache_dir": cache_dir,
        "remote_cache_dir": remote_cache_dir,
        "cache_max_bytes": cache_max_bytes,
        "cache_format": cache_format,
        "intern_table": intern_table,
        "max_cases": max_cases,
        "state_dir": str(state_dir),
        "events": str(state_dir / f"events-shard{shard.index}.jsonl"),
        "results": str(state_dir / f"results-shard{shard.index}.json"),
        "manifest": str(_manifest_path(state_dir, shard.index)),
    }


def run_shard_spec(spec: dict[str, Any]) -> int:
    """Execute one shard: run its cases, streaming an event and appending a
    manifest line per completed case, then write the shard's results file.

    Returns 0, or :data:`EXIT_INTERRUPTED` when ``max_cases`` stopped the
    shard early (the kill-and-resume path CI exercises).
    """
    shard_index = spec["shard"]
    cases = [case_from_dict(entry) for entry in spec["cases"]]
    max_cases = spec.get("max_cases")
    chaos_kill_after = spec.get("chaos_kill_after")
    interrupted = False
    if max_cases is not None and len(cases) > max_cases:
        cases = cases[:max_cases]
        interrupted = True

    # Shared intern table: open read-only (missing/stale tables degrade
    # to per-process interning) so cache hits resolve attribute references
    # and the worker skips re-interning the parent's working set.
    intern_table = spec.get("intern_table")
    if intern_table:
        open_shared_table(intern_table)

    cache = None
    if spec.get("cache_dir") or spec.get("remote_cache_dir"):
        cache = CompileCache(
            spec.get("cache_dir"),
            remote_dir=spec.get("remote_cache_dir"),
            fmt=spec.get("cache_format", "pickle"),
        )
    harness = EvaluationHarness(
        device=device_by_name(spec["device"]),
        repeats=spec["repeats"],
        cache=cache,
        jobs=max(spec.get("jobs", 1), 1),
        intern_table=intern_table,
    )
    events = EventWriter(spec["events"])
    manifest = Path(spec["manifest"])
    manifest.parent.mkdir(parents=True, exist_ok=True)
    events.emit(
        "shard_started", shard=shard_index, cases=len(cases),
        interrupted_after=max_cases if interrupted else None,
    )

    finished = 0

    def on_result(
        case: BenchmarkCase, framework: str, result: FrameworkResult, cached: bool
    ) -> None:
        nonlocal finished
        finished += 1
        key = harness.result_key(case, framework)
        entry = {
            "digest": key.digest("result"),
            "key": key.as_dict(),
            "case": case_to_dict(case),
            "result": _deterministic_entry(result.as_dict()),
        }
        with manifest.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
        events.emit(
            "case_finished",
            shard=shard_index,
            label=case.label,
            framework=framework,
            variant=case.variant,
            status=result.status,
            cached=cached,
            digest=entry["digest"],
            index=finished,
        )
        if chaos_kill_after is not None and finished >= chaos_kill_after:
            # Fault injection (tests/CI): die like a real `kill -9` would —
            # manifest written, results file never produced, no cleanup.
            # Deterministic because the *worker* pulls the trigger, not a
            # racing poll loop in the orchestrator.
            events.emit("chaos_kill", shard=shard_index, after_cases=finished)
            os.kill(os.getpid(), signal.SIGKILL)

    results = harness.run_matrix(cases=cases, on_result=on_result)
    if intern_table:
        # Publish back the attributes this shard's compilations produced
        # (append-only, atomic): later shards — including replacements
        # stealing a dead worker's cases — warm-start from them.
        publish_intern_table(intern_table)
    results_to_json(results, spec["results"], deterministic=True)
    if cache is not None and spec.get("cache_max_bytes") is not None:
        cache.gc(spec["cache_max_bytes"])
    events.emit(
        "shard_finished",
        shard=shard_index,
        completed=len(results),
        interrupted=interrupted,
        cache_stats=cache.stats.as_dict() if cache is not None else None,
    )
    return EXIT_INTERRUPTED if interrupted else 0


# ---------------------------------------------------------------------------
# Launchers
# ---------------------------------------------------------------------------


@dataclass
class ShardHandle:
    """One in-flight shard worker, as the fleet loop sees it."""

    spec: dict[str, Any]
    #: 1-based attempt number of this shard lineage (retries increment it).
    attempt: int = 1
    host: str | None = None
    proc: subprocess.Popen | None = None
    #: Synchronous launchers record the exit code directly.
    code: int | None = None
    log_path: Path | None = None
    _log_handle: Any = None


class ShardLauncher:
    """Fans shard jobs out to workers, one at a time.

    ``start`` launches one shard and returns a :class:`ShardHandle`;
    ``poll_shard`` reports its exit code (``None`` while running);
    ``kill`` SIGKILLs it (straggler replacement / chaos injection).  The
    fleet loop (:func:`run_fleet`) drives these to implement retry,
    straggler detection and work-stealing uniformly over every backend.
    """

    name = "abstract"

    def start(self, spec: dict[str, Any]) -> ShardHandle:
        raise NotImplementedError

    def poll_shard(self, handle: ShardHandle) -> int | None:
        raise NotImplementedError

    def kill(self, handle: ShardHandle) -> None:
        raise NotImplementedError

    def capacity(self) -> int | None:
        """Concurrent-worker capacity (``None`` = unbounded); the fleet
        splits stolen work over the idle share of this."""
        return None


class LocalLauncher(ShardLauncher):
    """Run every shard sequentially in this process.

    Deterministic and dependency-free: the backend for tests, dry runs
    and single-machine sweeps where per-shard ``--jobs`` already provides
    the parallelism.  ``start`` is synchronous, so local shards can never
    straggle and cannot be chaos-killed.
    """

    name = "local"

    def start(self, spec: dict[str, Any]) -> ShardHandle:
        return ShardHandle(spec=spec, code=run_shard_spec(spec))

    def poll_shard(self, handle: ShardHandle) -> int | None:
        return handle.code

    def kill(self, handle: ShardHandle) -> None:
        pass  # already finished by the time anyone could ask

    def capacity(self) -> int | None:
        return 1


class CommandLauncher(ShardLauncher):
    """Launch each shard worker as a *command* rendered from a template.

    The template is a shell-style string containing the placeholders
    ``{argv}`` (the worker command line, ``python -m
    repro.evaluation.orchestrator --run-shard <spec.json>``) and
    optionally ``{host}``.  ``"{argv}"`` runs the worker locally;
    ``"ssh {host} -- {argv}"`` runs it on a machine list (see
    :class:`RemoteLauncher`).  Worker stdout/stderr are captured to
    ``state_dir/shard<i>.log`` so a crashed worker always leaves a trace
    the orchestrator can quote.
    """

    name = "command"
    template = "{argv}"

    def __init__(self, python: str | None = None) -> None:
        self.python = python or sys.executable

    # -- template rendering ---------------------------------------------------

    def _worker_argv(self, spec_path: Path) -> list[str]:
        return [
            self.python, "-m", "repro.evaluation.orchestrator",
            "--run-shard", str(spec_path),
        ]

    def command_for(self, spec_path: Path, host: str | None) -> list[str]:
        argv = self._worker_argv(spec_path)
        rendered: list[str] = []
        for token in shlex.split(self.template):
            if token == "{argv}":
                rendered.extend(argv)
            else:
                token = token.replace("{host}", host or "")
                if "{argv}" in token:
                    token = token.replace("{argv}", shlex.join(argv))
                rendered.append(token)
        return rendered

    # -- host selection (machine-list backends override) ----------------------

    def pick_host(self) -> str | None:
        return None

    def release_host(self, host: str | None) -> None:
        pass

    # -- lifecycle ------------------------------------------------------------

    def _environment(self) -> dict[str, str]:
        env = dict(os.environ)
        # Workers must import repro exactly as this process does.  (Over
        # ssh the template must provide the remote environment instead.)
        src_dir = str(Path(__file__).resolve().parents[2])
        parts = [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        return env

    def start(self, spec: dict[str, Any]) -> ShardHandle:
        state_dir = Path(spec["state_dir"])
        spec_path = state_dir / f"shard{spec['shard']}.json"
        spec_path.write_text(json.dumps(spec, indent=2, sort_keys=True))
        host = self.pick_host()
        log_path = state_dir / f"shard{spec['shard']}.log"
        log_handle = log_path.open("ab")
        proc = subprocess.Popen(
            self.command_for(spec_path, host),
            env=self._environment(),
            stdout=log_handle,
            stderr=subprocess.STDOUT,
        )
        return ShardHandle(
            spec=spec, host=host, proc=proc,
            log_path=log_path, _log_handle=log_handle,
        )

    def poll_shard(self, handle: ShardHandle) -> int | None:
        code = handle.proc.poll()
        if code is not None and handle._log_handle is not None:
            handle._log_handle.close()
            handle._log_handle = None
            self.release_host(handle.host)
        return code

    def kill(self, handle: ShardHandle) -> None:
        if handle.proc is not None and handle.proc.poll() is None:
            handle.proc.kill()  # SIGKILL: the worker gets no chance to tidy up


class SubprocessLauncher(CommandLauncher):
    """One ``python -m repro.evaluation.orchestrator --run-shard`` process
    per shard on this machine — :class:`RemoteLauncher`'s degenerate case
    (the template is just ``{argv}``, no host)."""

    name = "subprocess"


class RemoteLauncher(CommandLauncher):
    """Machine-list backend: round-robin shard workers over ``hosts``
    through a command template, ``ssh {host} -- {argv}`` by default.

    The state directory (and any ``--cache-dir``/``--remote-cache-dir``)
    must be a path shared by every machine — an NFS/sshfs mount or a
    synced checkout — since workers write their manifests and event
    streams there and the orchestrator tails them.  Templates can inject
    whatever the remote side needs, e.g.::

        ssh {host} -- env PYTHONPATH=/mnt/repro/src {argv}

    A free host is preferred over a busy one, so work stolen from a dead
    machine lands on surviving machines first.
    """

    name = "remote"

    def __init__(
        self,
        hosts: Sequence[str],
        template: str = "ssh {host} -- {argv}",
        python: str | None = None,
    ) -> None:
        super().__init__(python=python)
        if not hosts:
            raise ValueError("RemoteLauncher needs at least one host")
        self.hosts = list(hosts)
        self.template = template
        self._busy: dict[str, int] = {host: 0 for host in self.hosts}
        self._rotation = 0

    def pick_host(self) -> str | None:
        # Least-busy wins; ties rotate so shards spread over the list.
        ordered = self.hosts[self._rotation:] + self.hosts[:self._rotation]
        self._rotation = (self._rotation + 1) % len(self.hosts)
        host = min(ordered, key=lambda h: self._busy[h])
        self._busy[host] += 1
        return host

    def release_host(self, host: str | None) -> None:
        if host in self._busy and self._busy[host] > 0:
            self._busy[host] -= 1

    def capacity(self) -> int | None:
        return len(self.hosts)


LAUNCHERS: dict[str, Callable[[], ShardLauncher]] = {
    "local": LocalLauncher,
    "subprocess": SubprocessLauncher,
}


# ---------------------------------------------------------------------------
# The fleet loop: retry, straggler detection, work-stealing
# ---------------------------------------------------------------------------


def _log_tail(path: Path | str | None, limit: int = 20) -> str:
    """The last ``limit`` lines of a worker log ('' when there is none)."""
    if path is None:
        return ""
    try:
        lines = Path(path).read_text(errors="replace").splitlines()
    except OSError:
        return ""
    return "\n".join(lines[-limit:])


def _manifest_entry_count(path: Path | str) -> int:
    """Completed-case count of one shard manifest (complete lines only)."""
    try:
        return Path(path).read_bytes().count(b"\n")
    except OSError:
        return 0


def _unfinished_cases(spec: dict[str, Any], state_dir: Path) -> list[BenchmarkCase]:
    """The cases of ``spec`` *not yet recorded* in any resumability manifest
    of the state dir — the work a dead or straggling shard leaves behind,
    computed from result-stage :class:`CacheKey` digests so a case another
    worker (or an earlier attempt) finished is never recompiled."""
    finished = set(load_manifest(state_dir))
    harness = EvaluationHarness(
        device=device_by_name(spec["device"]), repeats=spec["repeats"]
    )
    return [
        case
        for case in (case_from_dict(entry) for entry in spec["cases"])
        if harness.result_key(case).digest("result") not in finished
    ]


def _replacement_spec(
    spec: dict[str, Any], cases: Sequence[BenchmarkCase], index: int, state_dir: Path
) -> dict[str, Any]:
    """A fresh shard spec re-queueing ``cases`` under a new shard index
    (fresh manifest/event/log files; all other job parameters inherited)."""
    new = dict(spec)
    new["shard"] = index
    new["cases"] = [case_to_dict(case) for case in cases]
    new["events"] = str(state_dir / f"events-shard{index}.jsonl")
    new["results"] = str(state_dir / f"results-shard{index}.json")
    new["manifest"] = str(_manifest_path(state_dir, index))
    # Fault injection targets the first attempt only; replacements run clean.
    new.pop("chaos_kill_after", None)
    return new


@dataclass
class _Flight:
    """Fleet-loop bookkeeping for one in-flight shard attempt."""

    handle: ShardHandle
    attempt: int
    manifest: Path
    last_entries: int = 0
    last_progress: float = 0.0
    killed_by: str | None = None


@dataclass
class _Pending:
    """A re-queued shard waiting out its retry backoff."""

    ready_at: float
    spec: dict[str, Any]
    attempt: int
    from_shard: int


def run_fleet(
    specs: list[dict[str, Any]],
    launcher: ShardLauncher,
    *,
    state_dir: str | Path,
    events: EventWriter,
    forwarder: _EventForwarder,
    max_retries: int = 1,
    retry_backoff: float = 0.5,
    straggler_timeout: float | None = None,
    steal: bool = True,
    poll_interval: float = 0.05,
) -> tuple[list[int], list[dict[str, Any]]]:
    """Drive shard workers to completion with retry, straggler replacement
    and work-stealing.

    Every shard failure (non-zero exit that is not the resumable
    :data:`EXIT_INTERRUPTED`, including SIGKILL and straggler kills)
    re-queues the shard's *unfinished* cases — anything already recorded
    in a manifest is never re-run — as fresh shards after an exponential
    ``retry_backoff``.  With ``steal=True`` the re-queued work is split
    over the launcher's idle capacity (surviving machines pick it up);
    otherwise it is relaunched as one shard.  A lineage that fails more
    than ``max_retries`` times is reported as a hard failure with the
    tail of its worker log.

    ``straggler_timeout`` kills (SIGKILL) any worker whose manifest makes
    no progress for that many seconds, then re-queues it like a crash.

    Returns ``(terminal exit codes, hard failures)`` — codes of flights
    that were not replaced, and one diagnostic dict per exhausted lineage.
    """
    state_dir = Path(state_dir)
    codes: list[int] = []
    failures: list[dict[str, Any]] = []
    pending: list[_Pending] = []
    next_index = max((spec["shard"] for spec in specs), default=0) + 1

    def _launch(spec: dict[str, Any], attempt: int) -> _Flight:
        handle = launcher.start(spec)
        handle.attempt = attempt
        return _Flight(
            handle=handle,
            attempt=attempt,
            manifest=Path(spec["manifest"]),
            last_entries=_manifest_entry_count(spec["manifest"]),
            last_progress=time.monotonic(),
        )

    flights = [_launch(spec, 1) for spec in specs]
    while flights or pending:
        forwarder.poll()
        now = time.monotonic()

        for item in [p for p in pending if p.ready_at <= now]:
            pending.remove(item)
            Path(item.spec["events"]).write_text("")
            forwarder.add_path(Path(item.spec["events"]))
            flights.append(_launch(item.spec, item.attempt))

        still_running: list[_Flight] = []
        for flight in flights:
            spec = flight.handle.spec
            code = launcher.poll_shard(flight.handle)
            if code is None:
                entries = _manifest_entry_count(flight.manifest)
                if entries > flight.last_entries:
                    flight.last_entries = entries
                    flight.last_progress = now
                if (
                    straggler_timeout is not None
                    and flight.killed_by is None
                    and now - flight.last_progress > straggler_timeout
                ):
                    events.emit(
                        "shard_straggler",
                        shard=spec["shard"],
                        attempt=flight.attempt,
                        stalled_s=round(now - flight.last_progress, 3),
                    )
                    flight.killed_by = "straggler"
                    launcher.kill(flight.handle)
                still_running.append(flight)
                continue

            if code in (0, EXIT_INTERRUPTED):
                codes.append(code)
                continue

            # Crashed (or killed).  Re-queue whatever it did not finish.
            unfinished = _unfinished_cases(spec, state_dir)
            tail = _log_tail(flight.handle.log_path)
            events.emit(
                "shard_failed",
                shard=spec["shard"],
                attempt=flight.attempt,
                exit_code=code,
                cause=flight.killed_by or "crash",
                unfinished_cases=len(unfinished),
                log_tail=tail,
            )
            if not unfinished:
                # Died after manifesting every case (e.g. while writing the
                # shard results file): the manifest is the source of truth,
                # so nothing is lost and nothing needs re-running.
                codes.append(0)
                continue
            if flight.attempt > max_retries:
                failures.append(
                    {
                        "shard": spec["shard"],
                        "attempts": flight.attempt,
                        "exit_code": code,
                        "unfinished_cases": len(unfinished),
                        "log_tail": tail,
                    }
                )
                codes.append(code)
                continue
            nominal = launcher.capacity() or len(specs)
            idle = max(nominal - len(still_running), 1)
            shard_count = min(idle, len(unfinished)) if steal else 1
            delay = retry_backoff * (2 ** (flight.attempt - 1))
            for chunk in split_shards(
                order_for_prefix_sharing(unfinished), shard_count
            ):
                if not chunk:
                    continue
                new_spec = _replacement_spec(spec, chunk, next_index, state_dir)
                next_index += 1
                pending.append(
                    _Pending(now + delay, new_spec, flight.attempt + 1, spec["shard"])
                )
                events.emit(
                    "shard_requeued",
                    shard=new_spec["shard"],
                    from_shard=spec["shard"],
                    attempt=flight.attempt + 1,
                    cases=len(chunk),
                    backoff_s=delay,
                )
        flights = still_running
        if flights or pending:
            time.sleep(poll_interval)
    forwarder.poll()
    return codes, failures


# ---------------------------------------------------------------------------
# The orchestrator driver
# ---------------------------------------------------------------------------


def orchestrate(
    plan: OrchestrationPlan,
    *,
    state_dir: str | Path,
    launcher: ShardLauncher | str = "local",
    device: str = ALVEO_U280.name,
    repeats: int = 1,
    jobs: int = 1,
    cache_dir: str | None = None,
    remote_cache_dir: str | None = None,
    cache_max_bytes: int | None = None,
    cache_format: str = "pickle",
    intern_table: str | None = None,
    max_cases_per_shard: int | None = None,
    events: EventWriter | None = None,
    output: str | Path | None = None,
    max_retries: int = 1,
    retry_backoff: float = 0.5,
    straggler_timeout: float | None = None,
    steal: bool = True,
    chaos_kill_shard: int | None = None,
    chaos_kill_after: int = 1,
) -> tuple[int, list[dict[str, Any]]]:
    """Run a planned matrix end-to-end.

    Returns ``(exit_code, merged_entries)``: 0 when every planned case
    completed (possibly after retries/steals); :data:`EXIT_INTERRUPTED`
    when shards stopped at a ``max_cases_per_shard`` budget (resumable —
    re-run with the same state dir); 1 when a worker crashed beyond its
    ``max_retries`` budget or vanished without recording its cases (the
    failure message quotes the tail of the worker's captured log).
    Partial results are merged and written in every case.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    if isinstance(launcher, str):
        launcher = LAUNCHERS[launcher]()
    events = events or EventWriter(None)

    if intern_table is not None:
        # Publish the planned cases' attribute working set before any
        # worker launches: every shard — and every replacement shard a
        # steal spawns later — warm-starts its interner from the table.
        seed = EvaluationHarness(device=device_by_name(device), repeats=repeats)
        for shard in plan.shards:
            for case in shard.cases:
                seed.build_module(case.kernel, case.size.shape)
        published = publish_intern_table(intern_table)
        events.emit("intern_table", path=str(intern_table), records=published)

    specs = [
        shard_spec(
            shard,
            state_dir=state_dir,
            device=device,
            repeats=repeats,
            jobs=jobs,
            cache_dir=cache_dir,
            remote_cache_dir=remote_cache_dir,
            cache_max_bytes=cache_max_bytes,
            cache_format=cache_format,
            intern_table=intern_table,
            max_cases=max_cases_per_shard,
        )
        for shard in plan.shards
        if shard.cases
    ]
    if chaos_kill_shard is not None:
        if isinstance(launcher, LocalLauncher):
            # The worker SIGKILLs itself — in-process that is *this* process.
            raise ValueError(
                "chaos_kill_shard needs a process-based launcher"
            )
        for spec in specs:
            if spec["shard"] == chaos_kill_shard:
                spec["chaos_kill_after"] = chaos_kill_after
    events.emit(
        "plan",
        shards=len(specs),
        cases=plan.planned_cases,
        resumed=len(plan.resumed),
        order=plan.order,
        launcher=launcher.name,
        max_retries=max_retries,
        steal=steal,
    )
    forwarder = _EventForwarder([Path(spec["events"]) for spec in specs], events)
    # Shard event files are recreated by the workers; start tails at zero
    # against the previous run's leftovers.
    for spec in specs:
        Path(spec["events"]).write_text("")
    codes, failures = run_fleet(
        specs,
        launcher,
        state_dir=state_dir,
        events=events,
        forwarder=forwarder,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        straggler_timeout=straggler_timeout,
        steal=steal,
    )

    manifest = load_manifest(state_dir)
    harness = EvaluationHarness(device=device_by_name(device), repeats=repeats)
    planned_digests = {
        harness.result_key(case).digest("result")
        for shard in plan.shards
        for case in shard.cases
    }
    # Merge exactly the requested matrix (this run's cases + the ones the
    # plan resumed) — the state dir's manifest may hold results of other
    # sweeps that must not leak into this report.
    wanted = planned_digests | {entry["digest"] for _, entry in plan.resumed}
    merged = merge_results(
        entry["result"]
        for digest, entry in manifest.items()
        if digest in wanted
    )
    payload = json.dumps(merged, indent=2, sort_keys=True)
    if output is not None:
        Path(output).write_text(payload)

    missing = planned_digests - set(manifest)
    crashed = [code for code in codes if code not in (0, EXIT_INTERRUPTED)]
    interrupted = any(code == EXIT_INTERRUPTED for code in codes)
    ok = not missing and not crashed and not interrupted
    events.emit(
        "run_finished",
        ok=ok,
        planned=plan.planned_cases,
        completed=plan.planned_cases - len(missing),
        resumed=len(plan.resumed),
        merged_entries=len(merged),
        shard_exit_codes=codes,
        crashed_shards=len(crashed),
        hard_failures=len(failures),
    )
    for failure in failures:
        message = (
            f"shard {failure['shard']} failed with exit code "
            f"{failure['exit_code']} after {failure['attempts']} attempt(s); "
            f"{failure['unfinished_cases']} case(s) left unfinished"
        )
        tail = failure.get("log_tail") or ""
        if tail:
            message += "; last worker log lines:\n" + "\n".join(
                f"  | {line}" for line in tail.splitlines()
            )
        else:
            message += " (no worker log captured)"
        print(message, file=sys.stderr)
    if ok:
        exit_code = 0
    elif crashed or (missing and not interrupted):
        # A worker died (or "succeeded" without recording its cases):
        # a bug, not a resumable budget stop — fail loudly, don't return
        # the retryable EXIT_INTERRUPTED.
        exit_code = 1
    else:
        exit_code = EXIT_INTERRUPTED
    return exit_code, merged


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="shmls-orchestrate",
        description="Plan, shard and run the scenario matrix across workers, "
        "streaming results and resuming killed sweeps with zero recompiles",
    )
    parser.add_argument("--shards", type=int, default=2, metavar="N",
                        help="number of shards to fan the matrix out to (default 2)")
    parser.add_argument("--launcher", choices=sorted([*LAUNCHERS, "remote"]),
                        default="local",
                        help="shard backend: in-process 'local', one "
                        "'subprocess' worker per shard, or 'remote' workers "
                        "over a --hosts machine list")
    parser.add_argument("--hosts", nargs="+", default=None, metavar="HOST",
                        help="machine list for --launcher remote (shards are "
                        "spread least-busy-first over these hosts)")
    parser.add_argument("--remote-template", default="ssh {host} -- {argv}",
                        metavar="TEMPLATE",
                        help="worker command template for --launcher remote; "
                        "{argv} is the worker command line, {host} the "
                        "assigned machine (default 'ssh {host} -- {argv}')")
    parser.add_argument("--order", choices=("prefix", "case"), default="prefix",
                        help="case ordering: prefix-aware grouping (default) or "
                        "legacy case-major striding")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="process-pool width inside each shard (default 1)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs to average each measurement over (default 1)")
    parser.add_argument("--device", default=ALVEO_U280.name, help="target device")
    parser.add_argument("--quick", action="store_true",
                        help="smallest problem sizes only")
    parser.add_argument("--kernels", nargs="+", default=None, metavar="KERNEL",
                        help="kernels to sweep (default: the full paper matrix)")
    parser.add_argument("--sizes", nargs="+", default=None, metavar="LABEL",
                        help="problem-size labels to sweep")
    parser.add_argument("--frameworks", nargs="+", default=None, metavar="NAME",
                        help="frameworks to evaluate (default: all five)")
    parser.add_argument("--variants", nargs="+", default=None, metavar="NAME",
                        help="pipeline variants to sweep (e.g. the staged "
                        "ablation axis; pairs with Stencil-HMLS)")
    parser.add_argument("--state-dir", default=".shmls-orchestrate", metavar="DIR",
                        help="run directory for shard specs, manifests and "
                        "event streams (default .shmls-orchestrate)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared content-addressed compile-cache directory")
    parser.add_argument("--remote-cache-dir", default=None, metavar="DIR",
                        help="shared network cache tier behind --cache-dir "
                        "(an NFS/sshfs-mounted path): read-through on miss, "
                        "written back on store, so warm artefacts dedup "
                        "across machines and users")
    parser.add_argument("--cache-max-bytes", type=int, default=None, metavar="BYTES",
                        help="evict least-recently-used cache entries down to "
                        "this on-disk budget after each shard")
    parser.add_argument("--cache-format", choices=CACHE_FORMATS, default="pickle",
                        help="compile-cache storage format: 'pickle' (one "
                        "blob per entry) or 'mapped' (sectioned container, "
                        "mmap'd + lazily decoded on hits; default pickle)")
    parser.add_argument("--shared-intern-table", default=None, metavar="DIR",
                        help="shared attribute intern table directory: the "
                        "orchestrator publishes the planned cases' canonical "
                        "attributes before launching, and every shard worker "
                        "opens it read-only to warm-start its interner")
    parser.add_argument("--max-retries", type=int, default=1, metavar="N",
                        help="relaunch a dead/straggling shard's unfinished "
                        "cases up to N times before failing hard (default 1)")
    parser.add_argument("--retry-backoff", type=float, default=0.5, metavar="S",
                        help="base delay before a relaunch, doubled per "
                        "attempt (default 0.5s)")
    parser.add_argument("--straggler-timeout", type=float, default=None, metavar="S",
                        help="SIGKILL and re-queue any worker whose manifest "
                        "makes no progress for S seconds (default: off)")
    parser.add_argument("--no-steal", action="store_true",
                        help="relaunch a failed shard as one piece instead of "
                        "splitting its unfinished cases over idle capacity")
    parser.add_argument("--chaos-kill-shard", type=int, default=None, metavar="I",
                        help="fault injection (tests/CI): SIGKILL shard I's "
                        "first attempt once --chaos-kill-after of its cases "
                        "are manifested")
    parser.add_argument("--chaos-kill-after", type=int, default=1, metavar="N",
                        help="manifested cases before the chaos kill fires "
                        "(default 1)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the merged deterministic report here")
    parser.add_argument("--events", default=None, metavar="FILE",
                        help="write the orchestrator's JSONL event stream here")
    parser.add_argument("--stream", action="store_true",
                        help="stream JSONL events to stdout while shards run")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the shard plan (plus a lint verdict per "
                        "unique case) and exit without running")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the shmls-lint pass over the planned cases "
                        "during --dry-run")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore (and discard) the resume manifest in "
                        "--state-dir and re-run every case")
    parser.add_argument("--max-cases-per-shard", type=int, default=None, metavar="N",
                        help="stop each shard after N cases (smoke tests / "
                        "budgeted partial runs; the next run resumes)")
    parser.add_argument("--run-shard", default=None, metavar="SPEC.json",
                        help=argparse.SUPPRESS)  # internal worker entry point
    args = parser.parse_args(argv)

    if args.run_shard is not None:
        return run_shard_spec(json.loads(Path(args.run_shard).read_text()))

    if args.launcher == "remote":
        if not args.hosts:
            parser.error("--launcher remote needs --hosts")
        launcher: ShardLauncher = RemoteLauncher(
            args.hosts, template=args.remote_template
        )
    else:
        launcher = LAUNCHERS[args.launcher]()
    if args.chaos_kill_shard is not None and isinstance(launcher, LocalLauncher):
        parser.error("--chaos-kill-shard needs a process-based launcher "
                     "(subprocess or remote)")

    state_dir = Path(args.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    if args.fresh:
        for path in state_dir.glob("manifest-shard*.jsonl"):
            path.unlink()
    completed = load_manifest(state_dir)

    sizes = args.sizes
    kernels = args.kernels
    if args.quick and sizes is None:
        sizes = ["8M"]
    harness = EvaluationHarness(device=device_by_name(args.device), repeats=args.repeats)
    try:
        plan = plan_matrix(
            shards=args.shards,
            order=args.order,
            frameworks=args.frameworks,
            kernels=kernels,
            sizes=sizes,
            variants=args.variants,
            completed=completed,
            harness=harness,
        )
    except (KeyError, ValueError) as err:
        # KeyError's str() wraps the message in quotes; unwrap for the CLI.
        parser.error(err.args[0] if err.args else str(err))

    if args.dry_run:
        print(plan.describe())
        if args.no_lint:
            return 0
        # Doomed cases (lint errors) make the dry run exit 2 so scripted
        # sweeps can gate on it; warnings exit 1, a clean plan exits 0.
        return lint_plan(plan, device_name=args.device)

    events = EventWriter(args.events, echo=args.stream)

    code, merged = orchestrate(
        plan,
        state_dir=state_dir,
        launcher=launcher,
        device=args.device,
        repeats=args.repeats,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        remote_cache_dir=args.remote_cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        cache_format=args.cache_format,
        intern_table=args.shared_intern_table,
        max_cases_per_shard=args.max_cases_per_shard,
        events=events,
        output=args.output,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        straggler_timeout=args.straggler_timeout,
        steal=not args.no_steal,
        chaos_kill_shard=args.chaos_kill_shard,
        chaos_kill_after=args.chaos_kill_after,
    )
    print(
        f"orchestrated {plan.planned_cases} case(s) over "
        f"{sum(1 for s in plan.shards if s.cases)} shard(s); "
        f"{len(plan.resumed)} resumed; merged report has {len(merged)} entries"
        + (f" -> {args.output}" if args.output else "")
    )
    return code


if __name__ == "__main__":
    raise SystemExit(main())
