"""Regeneration of the paper's figures as data series.

The paper's plots are bar charts; here each figure becomes a nested mapping
``{kernel: {framework: {size: value}}}`` (plus helper accessors) that the
report module renders as text tables and the benchmarks assert properties
on.  Failed configurations carry ``None`` with the failure reason, exactly
as Figure 4 omits DaCe at 134M points and StencilFlow everywhere.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.evaluation.metrics import FrameworkResult

#: Framework display order used by the paper's figures.
FIGURE_FRAMEWORKS = ["Stencil-HMLS", "DaCe", "SODA-opt", "Vitis HLS"]


def _series(
    results: Iterable[FrameworkResult],
    kernel: str,
    value_of,
    frameworks: list[str] | None = None,
) -> dict[str, dict[str, float | None]]:
    frameworks = frameworks or FIGURE_FRAMEWORKS
    data: dict[str, dict[str, float | None]] = defaultdict(dict)
    for result in results:
        if result.kernel != kernel or result.framework not in frameworks:
            continue
        data[result.framework][result.size_label] = (
            value_of(result) if result.succeeded else None
        )
    return {fw: dict(sizes) for fw, sizes in data.items()}


def figure4_performance(results: Iterable[FrameworkResult]) -> dict[str, dict[str, dict[str, float | None]]]:
    """Figure 4: performance (MPt/s, higher is better) for both kernels."""
    results = list(results)
    return {
        "pw_advection": _series(results, "pw_advection", lambda r: r.mpts),
        "tracer_advection": _series(results, "tracer_advection", lambda r: r.mpts),
    }


def figure5_pw_power_energy(results: Iterable[FrameworkResult]) -> dict[str, dict[str, dict[str, float | None]]]:
    """Figure 5: average power (W) and energy (J) for PW advection (lower is better)."""
    results = list(results)
    return {
        "power_w": _series(results, "pw_advection", lambda r: r.average_power_w),
        "energy_j": _series(results, "pw_advection", lambda r: r.energy_j),
    }


def figure6_tracer_power_energy(results: Iterable[FrameworkResult]) -> dict[str, dict[str, dict[str, float | None]]]:
    """Figure 6: average power (W) and energy (J) for tracer advection."""
    results = list(results)
    return {
        "power_w": _series(results, "tracer_advection", lambda r: r.average_power_w),
        "energy_j": _series(results, "tracer_advection", lambda r: r.energy_j),
    }
