"""Text rendering of the regenerated figures and tables + results.json export.

Usage from the command line::

    python -m repro.evaluation.report                  # everything
    python -m repro.evaluation.report --figure 4       # one figure
    python -m repro.evaluation.report --table 1        # one table
    python -m repro.evaluation.report --quick          # smallest sizes only

The paper's artifact ships a ``results.json``; this module writes the same
kind of file for the simulated runs.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Iterable

from repro.core.compile_cache import CACHE_FORMATS, CompileCache
from repro.evaluation.figures import (
    FIGURE_FRAMEWORKS,
    figure4_performance,
    figure5_pw_power_energy,
    figure6_tracer_power_energy,
)
from repro.evaluation.harness import (
    DEFAULT_CASES,
    BenchmarkCase,
    EvaluationHarness,
    parse_shard,
    select_shard,
)
from repro.evaluation.metrics import FrameworkResult
from repro.evaluation.tables import RESOURCE_COLUMNS, table1_pw_resources, table2_tracer_resources
from repro.kernels.grids import PW_ADVECTION_SIZES, TRACER_ADVECTION_SIZES


def _format_value(value) -> str:
    if value is None:
        return f"{'--':>10}"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:10.0f}"
        return f"{value:10.2f}"
    return f"{value:>10}"


def format_figure(series: dict[str, dict[str, float | None]], title: str, unit: str) -> str:
    """Render one figure's data as an aligned text table."""
    sizes: list[str] = []
    for framework_series in series.values():
        for size in framework_series:
            if size not in sizes:
                sizes.append(size)
    lines = [f"{title}  [{unit}]", "-" * max(len(title) + len(unit) + 4, 40)]
    header = f"{'framework':<14}" + "".join(f"{size:>11}" for size in sizes)
    lines.append(header)
    for framework in FIGURE_FRAMEWORKS:
        if framework not in series:
            continue
        row = f"{framework:<14}"
        for size in sizes:
            row += " " + _format_value(series[framework].get(size))
        lines.append(row)
    return "\n".join(lines)


def format_table(rows: list[dict], title: str) -> str:
    """Render a resource-utilisation table like Tables 1/2 of the paper."""
    lines = [title, "-" * max(len(title), 60)]
    header = f"{'FRAMEWORK':<14}{'SIZE':>8}" + "".join(f"{'%' + c:>9}" for c in RESOURCE_COLUMNS)
    lines.append(header)
    for row in rows:
        line = f"{row['framework']:<14}{row['size']:>8}"
        for column in RESOURCE_COLUMNS:
            line += f"{row[column]:>9.2f}"
        lines.append(line)
    return "\n".join(lines)


def _deterministic_entry(entry: dict[str, Any]) -> dict[str, Any]:
    """Strip run-dependent noise — per-pass seconds and cache-provenance
    notes — so reports compare byte-for-byte across serial/parallel/cached
    runs."""
    entry = dict(entry)
    entry["pass_statistics"] = [
        {k: v for k, v in stat.items() if k not in ("seconds", "note")}
        for stat in entry.get("pass_statistics", [])
    ]
    return entry


def results_to_json(
    results: Iterable[FrameworkResult],
    path: str | Path | None = None,
    *,
    deterministic: bool = False,
) -> str:
    entries = [r.as_dict() for r in results]
    if deterministic:
        entries = [_deterministic_entry(e) for e in entries]
    payload = json.dumps(entries, indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(payload)
    return payload


def merge_results(*result_sets: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Merge JSON result lists, deduplicating by scenario identity.

    Later sets win on conflicts (a re-run supersedes stale entries); output
    order is deterministic — sorted by kernel, size, framework and variant —
    so merged reports from any shard/job split compare byte-for-byte.

    >>> stale = [{"kernel": "pw", "size": "8M", "framework": "F", "mpts": 0}]
    >>> fresh = [{"kernel": "pw", "size": "8M", "framework": "F", "mpts": 9}]
    >>> merge_results(stale, fresh)[0]["mpts"]
    9
    """
    merged: dict[tuple, dict[str, Any]] = {}
    for result_set in result_sets:
        for entry in result_set:
            key = (
                entry["kernel"],
                entry["size"],
                entry["framework"],
                entry.get("variant", "default"),
            )
            merged[key] = entry
    return [
        merged[key]
        for key in sorted(merged, key=lambda k: (k[0], str(k[1]), k[2], k[3]))
    ]


def merge_result_files(paths: Iterable[str | Path], output: str | Path | None = None) -> str:
    """Merge several ``results.json`` shards into one deterministic report."""
    merged = merge_results(*(json.loads(Path(p).read_text()) for p in paths))
    payload = json.dumps(merged, indent=2, sort_keys=True)
    if output is not None:
        Path(output).write_text(payload)
    return payload


def generate_all(results: list[FrameworkResult]) -> str:
    """Render every figure and table of the evaluation section."""
    fig4 = figure4_performance(results)
    fig5 = figure5_pw_power_energy(results)
    fig6 = figure6_tracer_power_energy(results)
    sections = [
        format_figure(fig4["pw_advection"], "Figure 4a: PW advection performance", "MPt/s"),
        format_figure(fig4["tracer_advection"], "Figure 4b: tracer advection performance", "MPt/s"),
        format_figure(fig5["power_w"], "Figure 5a: PW advection average power", "W"),
        format_figure(fig5["energy_j"], "Figure 5b: PW advection energy", "J"),
        format_figure(fig6["power_w"], "Figure 6a: tracer advection average power", "W"),
        format_figure(fig6["energy_j"], "Figure 6b: tracer advection energy", "J"),
        format_table(table1_pw_resources(results), "Table 1: resource usage, PW advection"),
        format_table(table2_tracer_resources(results), "Table 2: resource usage, tracer advection"),
    ]
    return "\n\n".join(sections)


def _quick_cases() -> list[BenchmarkCase]:
    return [
        BenchmarkCase("pw_advection", PW_ADVECTION_SIZES["8M"]),
        BenchmarkCase("tracer_advection", TRACER_ADVECTION_SIZES["8M"]),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the paper's figures and tables")
    parser.add_argument("--figure", type=int, choices=(4, 5, 6), help="only this figure")
    parser.add_argument("--table", type=int, choices=(1, 2), help="only this table")
    parser.add_argument("--quick", action="store_true", help="smallest problem sizes only")
    parser.add_argument("--output", type=str, default=None, help="write results.json here")
    parser.add_argument("--repeats", type=int, default=10, help="runs to average over")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="evaluate cases over N worker processes (default: serial)")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="content-addressed compile/result cache directory")
    parser.add_argument("--remote-cache-dir", type=str, default=None, metavar="DIR",
                        help="shared network cache tier behind --cache-dir "
                        "(an NFS/sshfs-mounted path): read-through on miss, "
                        "written back on store")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir and recompute everything")
    parser.add_argument("--cache-max-bytes", type=int, default=None, metavar="BYTES",
                        help="evict least-recently-used cache entries down to this "
                        "on-disk budget after the run")
    parser.add_argument("--cache-format", choices=CACHE_FORMATS, default="pickle",
                        help="compile-cache storage format: 'pickle' (one blob "
                        "per entry) or 'mapped' (sectioned container, mmap'd + "
                        "lazily decoded on hits; default pickle)")
    parser.add_argument("--shared-intern-table", default=None, metavar="DIR",
                        help="shared attribute intern table directory: "
                        "published before a --jobs pool dispatch and opened "
                        "read-only by every worker to warm-start its interner")
    parser.add_argument("--shard", type=str, default=None, metavar="I/N",
                        help="run only the I-th of N deterministic case shards "
                        "(1-based); merge shard outputs with merge_result_files")
    parser.add_argument("--deterministic", action="store_true",
                        help="strip wall-clock noise from --output JSON so runs compare byte-for-byte")
    parser.add_argument("--stream", action="store_true",
                        help="print a JSONL progress event per completed case "
                        "while the matrix is still running")
    args = parser.parse_args(argv)

    cache = None
    if (args.cache_dir or args.remote_cache_dir) and not args.no_cache:
        cache = CompileCache(
            args.cache_dir, remote_dir=args.remote_cache_dir, fmt=args.cache_format
        )
    if args.cache_max_bytes is not None and (cache is None or cache.cache_dir is None):
        parser.error("--cache-max-bytes needs an active local cache "
                     "(--cache-dir without --no-cache)")
    harness = EvaluationHarness(
        repeats=args.repeats,
        cache=cache,
        jobs=max(args.jobs, 1),
        intern_table=args.shared_intern_table,
    )
    cases = _quick_cases() if args.quick else list(DEFAULT_CASES)
    if args.shard:
        try:
            index, count = parse_shard(args.shard)
        except ValueError as err:
            parser.error(str(err))
        cases = select_shard(cases, index, count)
    on_result = None
    if args.stream:
        progress = {"done": 0}

        def on_result(case, framework, result, cached):
            progress["done"] += 1
            print(
                json.dumps(
                    {
                        "event": "case_finished",
                        "label": case.label,
                        "framework": framework,
                        "variant": case.variant,
                        "status": result.status,
                        "cached": cached,
                        "index": progress["done"],
                    },
                    sort_keys=True,
                ),
                flush=True,
            )

    results = harness.run_matrix(cases=cases, on_result=on_result)

    if args.output:
        results_to_json(results, args.output, deterministic=args.deterministic)

    if args.figure == 4:
        fig = figure4_performance(results)
        print(format_figure(fig["pw_advection"], "Figure 4a: PW advection performance", "MPt/s"))
        print()
        print(format_figure(fig["tracer_advection"], "Figure 4b: tracer advection performance", "MPt/s"))
    elif args.figure == 5:
        fig = figure5_pw_power_energy(results)
        print(format_figure(fig["power_w"], "Figure 5a: PW advection average power", "W"))
        print()
        print(format_figure(fig["energy_j"], "Figure 5b: PW advection energy", "J"))
    elif args.figure == 6:
        fig = figure6_tracer_power_energy(results)
        print(format_figure(fig["power_w"], "Figure 6a: tracer advection average power", "W"))
        print()
        print(format_figure(fig["energy_j"], "Figure 6b: tracer advection energy", "J"))
    elif args.table == 1:
        print(format_table(table1_pw_resources(results), "Table 1: resource usage, PW advection"))
    elif args.table == 2:
        print(format_table(table2_tracer_resources(results), "Table 2: resource usage, tracer advection"))
    else:
        print(generate_all(results))
    if cache is not None:
        if args.cache_max_bytes is not None:
            cache.gc(args.cache_max_bytes)
        else:
            cache.disk_bytes()
        for line in cache.stats.summary_lines():
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
