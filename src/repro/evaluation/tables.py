"""Regeneration of the paper's resource-utilisation tables (Tables 1 and 2)."""

from __future__ import annotations

from typing import Iterable

from repro.evaluation.metrics import FrameworkResult

#: Framework order of Table 1 (PW advection).  StencilFlow appears because
#: its PW advection bitstreams build even though they deadlock at run time.
TABLE1_FRAMEWORKS = ["Stencil-HMLS", "DaCe", "SODA-opt", "Vitis HLS", "StencilFlow"]
#: Framework order of Table 2 (tracer advection): StencilFlow cannot express
#: the kernel, so it has no rows.
TABLE2_FRAMEWORKS = ["Stencil-HMLS", "DaCe", "SODA-opt", "Vitis HLS"]

RESOURCE_COLUMNS = ["LUTs", "FFs", "BRAM", "DSPs"]


def _resource_rows(
    results: Iterable[FrameworkResult],
    kernel: str,
    frameworks: list[str],
) -> list[dict]:
    rows: list[dict] = []
    for result in results:
        if result.kernel != kernel or result.framework not in frameworks:
            continue
        if not result.compiled:
            continue
        row = {
            "framework": result.framework,
            "size": result.size_label,
            "points": result.points,
        }
        for column in RESOURCE_COLUMNS:
            row[column] = round(result.utilisation.get(column, 0.0), 2)
        rows.append(row)
    order = {name: index for index, name in enumerate(frameworks)}
    rows.sort(key=lambda r: (order[r["framework"]], r["points"]))
    return rows


def table1_pw_resources(results: Iterable[FrameworkResult]) -> list[dict]:
    """Table 1: resource usage for the PW advection kernel."""
    return _resource_rows(list(results), "pw_advection", TABLE1_FRAMEWORKS)


def table2_tracer_resources(results: Iterable[FrameworkResult]) -> list[dict]:
    """Table 2: resource usage for the tracer advection kernel."""
    return _resource_rows(list(results), "tracer_advection", TABLE2_FRAMEWORKS)
