"""Evaluation metrics, matching §4 of the paper.

* performance in million points per second (MPt/s) = problem size / kernel
  execution time;
* average power draw in watts over the kernel execution;
* energy in joules = average power × execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def megapoints_per_second(points: int, runtime_s: float) -> float:
    """The paper's performance metric."""
    if runtime_s <= 0:
        return 0.0
    return points / runtime_s / 1e6


def energy_joules(average_power_w: float, runtime_s: float) -> float:
    """The paper's energy metric (method of [13])."""
    return average_power_w * runtime_s


@dataclass
class FrameworkResult:
    """One (framework, kernel, problem size) evaluation outcome."""

    framework: str
    kernel: str
    size_label: str
    points: int
    #: Pipeline variant evaluated (see ``evaluation.harness.PIPELINE_VARIANTS``).
    variant: str = "default"
    status: str = "ok"            # 'ok' | 'compile_failed' | 'deadlock' | 'unsupported'
    mpts: float = 0.0
    runtime_s: float = 0.0
    average_power_w: float = 0.0
    energy_j: float = 0.0
    achieved_ii: int = 0
    compute_units: int = 0
    utilisation: dict[str, float] = field(default_factory=dict)
    error: str = ""
    notes: list[str] = field(default_factory=list)
    #: Per-pass compilation statistics (name/seconds/changed dicts) for
    #: pass-based flows; empty for baselines without a pass pipeline.
    pass_statistics: list[dict[str, Any]] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.status == "ok"

    @property
    def compiled(self) -> bool:
        return self.status in ("ok", "deadlock")

    def as_dict(self) -> dict[str, Any]:
        return {
            "framework": self.framework,
            "kernel": self.kernel,
            "size": self.size_label,
            "points": self.points,
            "variant": self.variant,
            "status": self.status,
            "mpts": self.mpts,
            "runtime_s": self.runtime_s,
            "average_power_w": self.average_power_w,
            "energy_j": self.energy_j,
            "achieved_ii": self.achieved_ii,
            "compute_units": self.compute_units,
            "utilisation": self.utilisation,
            "error": self.error,
            "notes": self.notes,
            "pass_statistics": self.pass_statistics,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FrameworkResult":
        """Rebuild a result from :meth:`as_dict` output (cache / JSON merge)."""
        return cls(
            framework=payload["framework"],
            kernel=payload["kernel"],
            size_label=payload["size"],
            points=payload["points"],
            variant=payload.get("variant", "default"),
            status=payload.get("status", "ok"),
            mpts=payload.get("mpts", 0.0),
            runtime_s=payload.get("runtime_s", 0.0),
            average_power_w=payload.get("average_power_w", 0.0),
            energy_j=payload.get("energy_j", 0.0),
            achieved_ii=payload.get("achieved_ii", 0),
            compute_units=payload.get("compute_units", 0),
            utilisation=dict(payload.get("utilisation", {})),
            error=payload.get("error", ""),
            notes=list(payload.get("notes", [])),
            pass_statistics=[dict(s) for s in payload.get("pass_statistics", [])],
        )


def speedup(result: FrameworkResult, baseline: FrameworkResult) -> float:
    """How much faster ``result`` is than ``baseline`` (by MPt/s)."""
    if baseline.mpts <= 0:
        return float("inf")
    return result.mpts / baseline.mpts


def energy_ratio(baseline: FrameworkResult, result: FrameworkResult) -> float:
    """How many times more energy ``baseline`` uses than ``result``."""
    if result.energy_j <= 0:
        return float("inf")
    return baseline.energy_j / result.energy_j
