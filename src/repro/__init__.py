"""Stencil-HMLS reproduction: automatic optimisation of stencil codes on FPGA.

Public API highlights
---------------------

* :mod:`repro.frontends` — express stencil kernels (PSyclone-like, Devito-like
  or plain Python) and obtain stencil-dialect IR.
* :class:`repro.core.pipeline.StencilHMLSCompiler` — the paper's compiler flow:
  stencil dialect → HLS dialect → annotated LLVM dialect → f++ → "bitstream".
* :mod:`repro.fpga` — the simulated Alveo U280 device, Vitis-like synthesis
  model, dataflow simulator and OpenCL-like host runtime.
* :mod:`repro.baselines` — behavioural models of DaCe, SODA-opt, Vitis HLS
  and StencilFlow used as comparison points.
* :mod:`repro.kernels` — the PW advection and NEMO tracer advection kernels.
* :mod:`repro.evaluation` — metrics, the experiment harness and the
  figure/table regeneration entry points.
"""

__version__ = "1.0.0"


def __getattr__(name: str):
    # Lazy imports keep `import repro` cheap and avoid import cycles.
    if name in ("StencilHMLSCompiler", "CompilerOptions"):
        from repro.core.pipeline import CompilerOptions, StencilHMLSCompiler

        return {"StencilHMLSCompiler": StencilHMLSCompiler, "CompilerOptions": CompilerOptions}[name]
    raise AttributeError(f"module 'repro' has no attribute '{name}'")


__all__ = ["StencilHMLSCompiler", "CompilerOptions", "__version__"]
