"""The Stencil-HMLS compiler: configuration, dataflow plan and pipeline."""

from repro.core.compile_cache import CacheKey, CacheStats, CompileCache
from repro.core.config import CompilerOptions
from repro.core.plan import (
    ComputeStageSpec,
    DataflowPlan,
    InterfaceSpec,
    LoadSpec,
    ShiftSpec,
    SmallDataCopySpec,
    StreamSpec,
    WavePlan,
    WriteFieldSpec,
    WriteSpec,
)

__all__ = [
    "CacheKey",
    "CacheStats",
    "CompileCache",
    "CompilerOptions",
    "ComputeStageSpec",
    "DataflowPlan",
    "InterfaceSpec",
    "LoadSpec",
    "ShiftSpec",
    "SmallDataCopySpec",
    "StreamSpec",
    "WavePlan",
    "WriteFieldSpec",
    "WriteSpec",
]
