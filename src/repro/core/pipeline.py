"""The end-to-end Stencil-HMLS compilation pipeline (Figure 1 of the paper).

Source code is turned into stencil-dialect IR by a frontend
(:mod:`repro.frontends`); this module drives everything below that level:

    stencil dialect
      │   staged stencil→HLS lowering (the nine steps of §3.3, see
      │   repro.transforms.stencil_hls; scheduled via the pass registry)
      ▼
    HLS dialect                      ──► kept for functional simulation
      │   HLSToLLVMPass (§3.2)
      ▼
    annotated LLVM dialect
      │   f++ preprocessing + runtime linking
      ▼
    Vitis-HLS-like synthesis model   ──► KernelDesign
      ▼
    Xclbin (design + plan + IR + reports)

The middle-end is driven by an MLIR-style textual pipeline spec (default
``canonicalize,convert-stencil-to-hls,convert-hls-to-llvm``); pass
``pass_pipeline=...`` (or ``--pass-pipeline`` on the CLI) to customise it,
e.g. to ablate individual lowering stages.  Per-pass timing/change
statistics of the last compilation are kept on ``compiler.pass_statistics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CompilerOptions
from repro.core.plan import DataflowPlan
from repro.dialects import hls, stencil
from repro.dialects.builtin import ModuleOp
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.synthesis import KernelDesign, VitisHLSBackend
from repro.fpga.xclbin import Xclbin
from repro.fpp.preprocessor import FPPReport, run_fpp
from repro.ir.pass_registry import PassRegistry
from repro.ir.passes import PassContext, PassManager, PassStatistics
from repro.ir.verifier import verify_module
from repro.transforms.hls_to_llvm import HLSToLLVMPass
from repro.transforms.stencil_hls import HLSBundleAssignmentPass, LoweringContext


def select_plan(plans: dict[str, DataflowPlan], kernel_name: str | None = None) -> DataflowPlan:
    """Look up one kernel's plan, accepting base or ``<name>_hls`` spellings.

    Raises a :class:`KeyError` listing the available kernel names when the
    lookup fails, and a :class:`ValueError` when ``kernel_name`` is needed
    but missing.
    """
    if kernel_name is None:
        if len(plans) != 1:
            raise ValueError(
                "module contains several kernels; pass kernel_name explicitly "
                f"(available: {', '.join(sorted(plans))})"
            )
        return next(iter(plans.values()))
    for candidate in (kernel_name, f"{kernel_name}_hls"):
        if candidate in plans:
            return plans[candidate]
    raise KeyError(
        f"no kernel named '{kernel_name}' was lowered "
        f"(available: {', '.join(sorted(plans))})"
    )


@dataclass
class CompilationArtifacts:
    """All intermediate artefacts of one compilation, for inspection/tests."""

    stencil_module: ModuleOp
    hls_module: ModuleOp
    llvm_module: ModuleOp
    plan: DataflowPlan
    fpp_report: FPPReport
    design: KernelDesign
    pass_statistics: list[PassStatistics] = field(default_factory=list)


class StencilHMLSCompiler:
    """Compile stencil-dialect modules into simulated FPGA bitstreams."""

    def __init__(
        self,
        options: CompilerOptions | None = None,
        device: FPGADevice = ALVEO_U280,
        clock_mhz: float | None = None,
        canonicalize: bool = True,
        pass_pipeline: str | None = None,
    ) -> None:
        self.options = options or CompilerOptions()
        self.options.validate()
        self.device = device
        self.backend = VitisHLSBackend(device, clock_mhz)
        self.canonicalize = canonicalize
        self.pass_pipeline = pass_pipeline
        #: Per-pass statistics of the most recent compilation.
        self.pass_statistics: list[PassStatistics] = []

    def default_pipeline(self) -> str:
        prefix = "canonicalize," if self.canonicalize else ""
        return f"{prefix}convert-stencil-to-hls,convert-hls-to-llvm"

    # -- public API -------------------------------------------------------------

    def compile(self, stencil_module: ModuleOp, kernel_name: str | None = None) -> Xclbin:
        """Run the full flow and return the xclbin-like artefact."""
        artifacts = self.compile_with_artifacts(stencil_module, kernel_name)
        return Xclbin(
            kernel_name=artifacts.plan.kernel_name,
            design=artifacts.design,
            plan=artifacts.plan,
            stencil_module=artifacts.stencil_module,
            hls_module=artifacts.hls_module,
            llvm_module=artifacts.llvm_module,
            fpp_report=artifacts.fpp_report,
        )

    def compile_with_artifacts(
        self, stencil_module: ModuleOp, kernel_name: str | None = None
    ) -> CompilationArtifacts:
        verify_module(stencil_module)
        # Work on a copy so the caller keeps the stencil-level module intact.
        working: ModuleOp = stencil_module.clone()

        spec = self.pass_pipeline or self.default_pipeline()
        context = PassContext()
        context.set(LoweringContext(options=self.options))
        manager = PassRegistry.parse(spec, context=context)

        # Snapshot the HLS-dialect module right before it is lowered to LLVM
        # dialect: it is what the functional dataflow simulator executes.  A
        # convert-hls-to-llvm scheduled *before* the stencil lowering no-ops
        # on a stencil module — only snapshot once kernels were lowered.
        snapshots: dict[str, ModuleOp] = {}

        def snapshot_hls(pass_, module) -> None:
            if isinstance(pass_, HLSToLLVMPass) and "hls" not in snapshots:
                lowering = context.get(LoweringContext)
                if lowering is not None and lowering.plans:
                    snapshots["hls"] = module.clone()

        manager.run(working, on_pass_start=snapshot_hls)
        self.pass_statistics = list(manager.statistics)

        lowering = context.get(LoweringContext)
        plans = dict(lowering.plans) if lowering is not None else {}
        if not plans:
            missing = lowering.next_missing_stage() if lowering is not None else None
            if missing is not None:
                raise ValueError(
                    f"pipeline '{spec}' stopped before the stencil lowering "
                    f"finished: add '{missing}' (and the stages after it), or "
                    "use 'convert-stencil-to-hls'"
                )
            if any(True for _ in working.walk_type(stencil.ApplyOp)):
                raise ValueError(
                    f"pipeline '{spec}' schedules no stencil lowering stage: "
                    "add 'convert-stencil-to-hls' (or the stencil-* sub-passes)"
                )
            raise ValueError(
                "module contains no stencil kernel to compile "
                f"(pipeline: '{spec}')"
            )

        # A plan without AXI bundle assignment synthesises into a nonsense
        # design (zero ports): complete the pipeline while the HLS-dialect
        # interface ops are still around, or refuse if they are already gone.
        if lowering.unbundled_kernels:
            if "hls" in snapshots:
                raise ValueError(
                    "pipeline lowered to LLVM before 'hls-bundle-assignment' "
                    f"ran for kernel(s) {', '.join(sorted(lowering.unbundled_kernels))}; "
                    "schedule it before convert-hls-to-llvm"
                )
            bundle = PassManager([HLSBundleAssignmentPass()], context=context)
            bundle.run(working)
            self.pass_statistics.extend(bundle.statistics)
            plans = dict(lowering.plans)

        plan = select_plan(plans, kernel_name)

        hls_module = snapshots.get("hls")
        if any(isinstance(op, hls.DIALECT_OPERATIONS) for op in working.walk()):
            # The custom pipeline stopped at (or never left) the HLS dialect:
            # snapshot it and finish the mandatory LLVM lowering implicitly.
            if hls_module is None:
                hls_module = working.clone()
            tail = PassManager([HLSToLLVMPass()], context=context)
            tail.run(working)
            self.pass_statistics.extend(tail.statistics)
        elif hls_module is None:
            hls_module = working.clone()

        fpp_report = run_fpp(working)

        # Vitis-HLS-like synthesis.  The plan carries the effective options
        # (including any per-pass pipeline overrides).
        design = self.backend.synthesise(plan, fpp_report, plan.options or self.options)

        return CompilationArtifacts(
            stencil_module=stencil_module,
            hls_module=hls_module,
            llvm_module=working,
            plan=plan,
            fpp_report=fpp_report,
            design=design,
            pass_statistics=list(self.pass_statistics),
        )
