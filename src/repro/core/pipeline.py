"""The end-to-end Stencil-HMLS compilation pipeline (Figure 1 of the paper).

Source code is turned into stencil-dialect IR by a frontend
(:mod:`repro.frontends`); this module drives everything below that level:

    stencil dialect
      │   StencilToHLSPass (the nine automatic optimisation steps of §3.3)
      ▼
    HLS dialect                      ──► kept for functional simulation
      │   HLSToLLVMPass (§3.2)
      ▼
    annotated LLVM dialect
      │   f++ preprocessing + runtime linking
      ▼
    Vitis-HLS-like synthesis model   ──► KernelDesign
      ▼
    Xclbin (design + plan + IR + reports)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CompilerOptions
from repro.core.plan import DataflowPlan
from repro.dialects.builtin import ModuleOp
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.synthesis import KernelDesign, VitisHLSBackend
from repro.fpga.xclbin import Xclbin
from repro.fpp.preprocessor import FPPReport, run_fpp
from repro.ir.passes import PassManager
from repro.ir.verifier import verify_module
from repro.transforms.canonicalize import CanonicalizePass
from repro.transforms.hls_to_llvm import HLSToLLVMPass
from repro.transforms.stencil_to_hls import StencilToHLSPass


@dataclass
class CompilationArtifacts:
    """All intermediate artefacts of one compilation, for inspection/tests."""

    stencil_module: ModuleOp
    hls_module: ModuleOp
    llvm_module: ModuleOp
    plan: DataflowPlan
    fpp_report: FPPReport
    design: KernelDesign


class StencilHMLSCompiler:
    """Compile stencil-dialect modules into simulated FPGA bitstreams."""

    def __init__(
        self,
        options: CompilerOptions | None = None,
        device: FPGADevice = ALVEO_U280,
        clock_mhz: float | None = None,
        canonicalize: bool = True,
    ) -> None:
        self.options = options or CompilerOptions()
        self.options.validate()
        self.device = device
        self.backend = VitisHLSBackend(device, clock_mhz)
        self.canonicalize = canonicalize

    # -- public API -------------------------------------------------------------

    def compile(self, stencil_module: ModuleOp, kernel_name: str | None = None) -> Xclbin:
        """Run the full flow and return the xclbin-like artefact."""
        artifacts = self.compile_with_artifacts(stencil_module, kernel_name)
        return Xclbin(
            kernel_name=artifacts.plan.kernel_name,
            design=artifacts.design,
            plan=artifacts.plan,
            stencil_module=artifacts.stencil_module,
            hls_module=artifacts.hls_module,
            llvm_module=artifacts.llvm_module,
            fpp_report=artifacts.fpp_report,
        )

    def compile_with_artifacts(
        self, stencil_module: ModuleOp, kernel_name: str | None = None
    ) -> CompilationArtifacts:
        verify_module(stencil_module)
        # Work on a copy so the caller keeps the stencil-level module intact.
        working: ModuleOp = stencil_module.clone()

        if self.canonicalize:
            PassManager([CanonicalizePass()]).run(working)

        # stencil → HLS (the paper's contribution).
        stencil_to_hls = StencilToHLSPass(self.options)
        PassManager([stencil_to_hls]).run(working)
        if not stencil_to_hls.plans:
            raise ValueError("module contains no stencil kernel to compile")
        if kernel_name is not None:
            plan = stencil_to_hls.plans.get(f"{kernel_name}_hls") or stencil_to_hls.plans.get(kernel_name)
            if plan is None:
                raise KeyError(f"no kernel named '{kernel_name}' was lowered")
        else:
            if len(stencil_to_hls.plans) != 1:
                raise ValueError(
                    "module contains several kernels; pass kernel_name explicitly"
                )
            plan = next(iter(stencil_to_hls.plans.values()))

        # Keep the HLS-dialect module for functional dataflow simulation.
        hls_module: ModuleOp = working.clone()

        # HLS → annotated LLVM dialect, then f++.
        PassManager([HLSToLLVMPass()]).run(working)
        fpp_report = run_fpp(working)

        # Vitis-HLS-like synthesis.
        design = self.backend.synthesise(plan, fpp_report, self.options)

        return CompilationArtifacts(
            stencil_module=stencil_module,
            hls_module=hls_module,
            llvm_module=working,
            plan=plan,
            fpp_report=fpp_report,
            design=design,
        )
