"""The end-to-end Stencil-HMLS compilation pipeline (Figure 1 of the paper).

Source code is turned into stencil-dialect IR by a frontend
(:mod:`repro.frontends`); this module drives everything below that level:

    stencil dialect
      │   staged stencil→HLS lowering (the nine steps of §3.3, see
      │   repro.transforms.stencil_hls; scheduled via the pass registry)
      ▼
    HLS dialect                      ──► kept for functional simulation
      │   HLSToLLVMPass (§3.2)
      ▼
    annotated LLVM dialect
      │   f++ preprocessing + runtime linking
      ▼
    Vitis-HLS-like synthesis model   ──► KernelDesign
      ▼
    Xclbin (design + plan + IR + reports)

The middle-end is driven by an MLIR-style textual pipeline spec (default
``canonicalize,convert-stencil-to-hls,convert-hls-to-llvm``); pass
``pass_pipeline=...`` (or ``--pass-pipeline`` on the CLI) to customise it,
e.g. to ablate individual lowering stages.  Per-pass timing/change
statistics of the last compilation are kept on ``compiler.pass_statistics``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.core.compile_cache import CacheKey, CompileCache
from repro.core.config import CompilerOptions
from repro.core.plan import DataflowPlan
from repro.dialects import hls, stencil
from repro.dialects.builtin import ModuleOp
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.synthesis import KernelDesign, VitisHLSBackend
from repro.fpga.xclbin import Xclbin
from repro.fpp.preprocessor import FPPReport, run_fpp
from repro.ir.analysis import AnalysisManager, AnalysisStats
from repro.ir.hashing import fingerprint_mapping, module_hash
from repro.ir.pass_registry import PassRegistry, canonical_pipeline_spec
from repro.ir.passes import PassContext, PassManager, PassStatistics
from repro.ir.verifier import verify_module
from repro.transforms.hls_to_llvm import HLSToLLVMPass
from repro.transforms.stencil_hls import HLSBundleAssignmentPass, LoweringContext


def select_plan(plans: dict[str, DataflowPlan], kernel_name: str | None = None) -> DataflowPlan:
    """Look up one kernel's plan, accepting base or ``<name>_hls`` spellings.

    Raises a :class:`KeyError` listing the available kernel names when the
    lookup fails, and a :class:`ValueError` when ``kernel_name`` is needed
    but missing.
    """
    if kernel_name is None:
        if len(plans) != 1:
            raise ValueError(
                "module contains several kernels; pass kernel_name explicitly "
                f"(available: {', '.join(sorted(plans))})"
            )
        return next(iter(plans.values()))
    for candidate in (kernel_name, f"{kernel_name}_hls"):
        if candidate in plans:
            return plans[candidate]
    raise KeyError(
        f"no kernel named '{kernel_name}' was lowered "
        f"(available: {', '.join(sorted(plans))})"
    )


@dataclass
class CompilationArtifacts:
    """All intermediate artefacts of one compilation, for inspection/tests."""

    stencil_module: ModuleOp
    hls_module: ModuleOp
    llvm_module: ModuleOp
    plan: DataflowPlan
    fpp_report: FPPReport
    design: KernelDesign
    pass_statistics: list[PassStatistics] = field(default_factory=list)


@dataclass
class MiddleEndResult:
    """Device-independent output of the pass pipeline — the unit the
    compile cache stores under the ``middle-end`` stage."""

    hls_module: ModuleOp
    llvm_module: ModuleOp
    plans: dict[str, DataflowPlan]
    fpp_report: FPPReport
    pass_statistics: list[PassStatistics]

    def clone(self, *, note: str = "") -> "MiddleEndResult":
        """A copy whose IR modules the caller may freely mutate.

        Plans/reports are treated as immutable and shared; statistics are
        copied so a ``note`` (e.g. ``cached``) can be stamped per retrieval.
        """
        return MiddleEndResult(
            hls_module=self.hls_module.clone(),
            llvm_module=self.llvm_module.clone(),
            plans=dict(self.plans),
            fpp_report=self.fpp_report,
            pass_statistics=[
                dataclasses.replace(stat, note=note or stat.note)
                for stat in self.pass_statistics
            ],
        )

    def with_note(self, note: str = "") -> "MiddleEndResult":
        """Restamp statistics *without* cloning the IR.

        Valid only when the modules are already private to the caller —
        which is exactly what a mapped-cache hit hands back (every decode
        builds fresh objects), so mapped restores skip the pickle
        round-trip :meth:`clone` pays.
        """
        return MiddleEndResult(
            hls_module=self.hls_module,
            llvm_module=self.llvm_module,
            plans=dict(self.plans),
            fpp_report=self.fpp_report,
            pass_statistics=[
                dataclasses.replace(stat, note=note or stat.note)
                for stat in self.pass_statistics
            ],
        )

    # -- mapped-cache codec (see repro.core.compile_cache) --------------------

    def __mapped_sections__(self) -> tuple[dict, dict]:
        # llvm_module and the plans reference shared IR objects (plan
        # analyses point into the module), so they serialise together;
        # the HLS snapshot is an independent clone and gets its own
        # lazily-decoded section.
        return {}, {
            "hls": self.hls_module,
            "payload": (self.llvm_module, self.plans, self.fpp_report),
            "statistics": self.pass_statistics,
        }

    @classmethod
    def __from_mapped__(cls, meta: dict, section, has) -> "MiddleEndResult":
        llvm_module, plans, fpp_report = section("payload")
        return cls(
            hls_module=section("hls"),
            llvm_module=llvm_module,
            plans=plans,
            fpp_report=fpp_report,
            pass_statistics=section("statistics"),
        )


@dataclass
class PassPrefixArtifact:
    """Middle-end snapshot after one pipeline *prefix* — the unit of the
    per-pass artefact cache (stage ``pass-prefix``).

    Stored under ``(incoming module fingerprint, canonical spec prefix,
    options fingerprint)``, so an ablation sweep that only toggles a late
    sub-pass resumes from the longest shared prefix instead of re-running
    every upstream pass.  The module, the :class:`LoweringContext` and the
    HLS snapshot reference each other's IR objects, so they are cloned
    *together* (one pickle round-trip) to stay consistent.
    """

    module: ModuleOp
    lowering: "LoweringContext | None"
    hls_module: ModuleOp | None
    statistics: list[PassStatistics]
    #: Fingerprint of ``module`` — the next stage's chain key, precomputed
    #: so warm lookups never have to re-hash restored snapshots.
    out_hash: str

    def clone(self, *, note: str = "") -> "PassPrefixArtifact":
        module, lowering, hls_module = CompileCache._loads(
            CompileCache._dumps((self.module, self.lowering, self.hls_module))
        )
        return PassPrefixArtifact(
            module=module,
            lowering=lowering,
            hls_module=hls_module,
            statistics=[
                dataclasses.replace(stat, note=note or stat.note)
                for stat in self.statistics
            ],
            out_hash=self.out_hash,
        )

    def with_note(self, note: str = "") -> "PassPrefixArtifact":
        """Restamp statistics without re-serialising the snapshot — the
        mapped-cache counterpart of :meth:`clone` (decoded sections are
        already private objects)."""
        return PassPrefixArtifact(
            module=self.module,
            lowering=self.lowering,
            hls_module=self.hls_module,
            statistics=[
                dataclasses.replace(stat, note=note or stat.note)
                for stat in self.statistics
            ],
            out_hash=self.out_hash,
        )

    # -- mapped-cache codec (see repro.core.compile_cache) --------------------

    def __mapped_sections__(self) -> tuple[dict, dict]:
        # The module and the LoweringContext reference each other's IR
        # objects, so they share one section; the HLS snapshot (when
        # present) is independent and decodes lazily — a chain walk that
        # never simulates the kernel never touches it.
        meta = {"out_hash": self.out_hash}
        parts: dict[str, Any] = {
            "payload": (self.module, self.lowering),
            "statistics": self.statistics,
        }
        if self.hls_module is not None:
            parts["hls"] = self.hls_module
        return meta, parts

    @classmethod
    def __from_mapped__(cls, meta: dict, section, has) -> "PassPrefixArtifact":
        module, lowering = section("payload")
        return cls(
            module=module,
            lowering=lowering,
            hls_module=section("hls") if has("hls") else None,
            statistics=section("statistics"),
            out_hash=meta["out_hash"],
        )


class StencilHMLSCompiler:
    """Compile stencil-dialect modules into simulated FPGA bitstreams."""

    def __init__(
        self,
        options: CompilerOptions | None = None,
        device: FPGADevice = ALVEO_U280,
        clock_mhz: float | None = None,
        canonicalize: bool = True,
        pass_pipeline: str | None = None,
        cache: CompileCache | None = None,
    ) -> None:
        self.options = options or CompilerOptions()
        self.options.validate()
        self.device = device
        self.backend = VitisHLSBackend(device, clock_mhz)
        self.canonicalize = canonicalize
        self.pass_pipeline = pass_pipeline
        #: Optional content-addressed artefact cache shared across sessions.
        self.cache = cache
        #: Per-pass statistics of the most recent compilation.
        self.pass_statistics: list[PassStatistics] = []
        #: Analysis-cache hit/miss counters of the most recent middle-end
        #: run (None when the whole middle-end came out of the cache).
        self.analysis_statistics: AnalysisStats | None = None

    def default_pipeline(self) -> str:
        prefix = "canonicalize," if self.canonicalize else ""
        return f"{prefix}convert-stencil-to-hls,convert-hls-to-llvm"

    def cache_key(self, stencil_module: ModuleOp, spec: str | None = None) -> CacheKey:
        """Content address of compiling ``stencil_module`` with this compiler.

        Device-independent: the ``middle-end`` stage uses it as-is, the
        ``synthesis`` stage appends device/clock/kernel to ``extra``.  The
        pipeline component is the *canonicalised* spec, so the full pass
        list and every pass option participate in the key.
        """
        spec = spec or self.pass_pipeline or self.default_pipeline()
        return CacheKey(
            module_hash=module_hash(stencil_module),
            pipeline=canonical_pipeline_spec(spec),
            options=fingerprint_mapping(dataclasses.asdict(self.options)),
        )

    # -- public API -------------------------------------------------------------

    def compile(self, stencil_module: ModuleOp, kernel_name: str | None = None) -> Xclbin:
        """Run the full flow and return the xclbin-like artefact."""
        artifacts = self.compile_with_artifacts(stencil_module, kernel_name)
        return Xclbin(
            kernel_name=artifacts.plan.kernel_name,
            design=artifacts.design,
            plan=artifacts.plan,
            stencil_module=artifacts.stencil_module,
            hls_module=artifacts.hls_module,
            llvm_module=artifacts.llvm_module,
            fpp_report=artifacts.fpp_report,
        )

    def compile_with_artifacts(
        self, stencil_module: ModuleOp, kernel_name: str | None = None
    ) -> CompilationArtifacts:
        verify_module(stencil_module)
        spec = self.pass_pipeline or self.default_pipeline()
        self.analysis_statistics = None

        key = self.cache_key(stencil_module, spec) if self.cache is not None else None
        mapped = self.cache is not None and self.cache.fmt == "mapped"
        middle: MiddleEndResult | None = None
        if self.cache is not None and key is not None:
            # Mapped hits decode to fresh private objects already, so the
            # note is restamped in place; pickle hits clone defensively.
            middle = self.cache.get(
                key,
                "middle-end",
                rehydrate=(
                    (lambda m: m.with_note("cached"))
                    if mapped
                    else (lambda m: m.clone(note="cached"))
                ),
            )
        if middle is None:
            middle = self._run_middle_end(stencil_module.clone(), spec)
            if self.cache is not None and key is not None:
                # Store a private copy: the caller may mutate the returned
                # IR.  Mapped stores encode immediately (isolation built
                # in), so the clone round-trip is pickle-format-only.
                self.cache.put(key, "middle-end", middle if mapped else middle.clone())
        self.pass_statistics = list(middle.pass_statistics)

        plan = select_plan(middle.plans, kernel_name)

        design: KernelDesign | None = None
        synth_key: CacheKey | None = None
        if self.cache is not None and key is not None:
            synth_key = dataclasses.replace(
                key,
                extra=f"device={self.device.name}|clock={self.backend.clock_mhz}"
                f"|kernel={plan.kernel_name}",
            )
            design = self.cache.get(synth_key, "synthesis")
        if design is None:
            fpp_report = middle.fpp_report
            # Vitis-HLS-like synthesis.  The plan carries the effective
            # options (including any per-pass pipeline overrides).
            design = self.backend.synthesise(plan, fpp_report, plan.options or self.options)
            if self.cache is not None and synth_key is not None:
                self.cache.put(synth_key, "synthesis", design)

        return CompilationArtifacts(
            stencil_module=stencil_module,
            hls_module=middle.hls_module,
            llvm_module=middle.llvm_module,
            plan=plan,
            fpp_report=middle.fpp_report,
            design=design,
            pass_statistics=list(self.pass_statistics),
        )

    # -- middle-end (device-independent pass pipeline) -----------------------

    def _run_middle_end(self, working: ModuleOp, spec: str) -> MiddleEndResult:
        context = PassContext()
        context.set(LoweringContext(options=self.options))
        manager = PassRegistry.parse(spec, context=context)
        passes = manager.passes
        statistics: list[PassStatistics] = []

        # Snapshot the HLS-dialect module right before it is lowered to LLVM
        # dialect: it is what the functional dataflow simulator executes.  A
        # convert-hls-to-llvm scheduled *before* the stencil lowering no-ops
        # on a stencil module — only snapshot once kernels were lowered.
        snapshots: dict[str, ModuleOp] = {}

        # Per-pass-prefix artefact cache: resume from the longest cached
        # prefix, then store a snapshot after each freshly-executed pass so
        # future sweeps sharing a longer prefix resume even later.
        use_prefix = self.cache is not None and len(passes) > 1
        start_index = 0
        prefix_parts: list[str] = []
        incoming_hash = ""
        options_fp = ""
        if use_prefix:
            options_fp = fingerprint_mapping(dataclasses.asdict(self.options))
            incoming_hash = module_hash(working)
            # Walk the chain through the tiny ``pass-prefix-hash`` sidecar
            # entries (just the out-hash strings) so no snapshot payload is
            # unpickled along the way; only the longest prefix's artefact
            # is then fetched and cloned — one pickle round-trip total.
            chain_hash = incoming_hash
            chain_keys: list[CacheKey] = []
            for pass_ in passes:
                prefix_parts.append(pass_.describe())
                key = CacheKey(chain_hash, ",".join(prefix_parts), options_fp)
                next_hash = self.cache.get(key, "pass-prefix-hash")
                if not isinstance(next_hash, str):
                    break
                chain_keys.append(key)
                chain_hash = next_hash
            while chain_keys:
                # Fall back to shorter prefixes if a snapshot went missing
                # (e.g. its store failed while the sidecar's succeeded).
                artifact = self.cache.get(chain_keys[-1], "pass-prefix")
                if artifact is not None:
                    restored = (
                        artifact.with_note("prefix-cached")
                        if self.cache.fmt == "mapped"
                        else artifact.clone(note="prefix-cached")
                    )
                    start_index = len(chain_keys)
                    working = restored.module
                    context = PassContext()
                    if restored.lowering is not None:
                        context.set(restored.lowering)
                    statistics = list(restored.statistics)
                    if restored.hls_module is not None:
                        snapshots["hls"] = restored.hls_module
                    incoming_hash = restored.out_hash
                    break
                chain_keys.pop()
            prefix_parts = prefix_parts[:start_index]

        def snapshot_hls(pass_, module) -> None:
            if isinstance(pass_, HLSToLLVMPass) and "hls" not in snapshots:
                lowering = context.get(LoweringContext)
                if lowering is not None and lowering.plans:
                    snapshots["hls"] = module.clone()

        def store_prefix(pass_, module, stat: PassStatistics) -> None:
            nonlocal incoming_hash
            statistics.append(stat)
            if not use_prefix:
                return
            prefix_parts.append(pass_.describe())
            if len(prefix_parts) == len(passes):
                # The full-length "prefix" is not stored: the middle-end
                # stage already caches the completed pipeline's result.
                return
            key = CacheKey(incoming_hash, ",".join(prefix_parts), options_fp)
            out_hash = module_hash(module)
            artifact = PassPrefixArtifact(
                module=module,
                lowering=context.get(LoweringContext),
                hls_module=snapshots.get("hls"),
                statistics=list(statistics),
                out_hash=out_hash,
            )
            # isolate=True snapshots the live, still-mutating module with a
            # single serialisation shared by both cache tiers.
            self.cache.put(key, "pass-prefix", artifact, isolate=True)
            self.cache.put(key, "pass-prefix-hash", out_hash)
            incoming_hash = out_hash

        manager.context = context
        manager.run(
            working,
            on_pass_start=snapshot_hls,
            on_pass_end=store_prefix,
            start_index=start_index,
        )
        analyses = context.get(AnalysisManager)
        self.analysis_statistics = analyses.stats if analyses is not None else None

        lowering = context.get(LoweringContext)
        plans = dict(lowering.plans) if lowering is not None else {}
        if not plans:
            missing = lowering.next_missing_stage() if lowering is not None else None
            if missing is not None:
                raise ValueError(
                    f"pipeline '{spec}' stopped before the stencil lowering "
                    f"finished: add '{missing}' (and the stages after it), or "
                    "use 'convert-stencil-to-hls'"
                )
            if any(True for _ in working.walk_type(stencil.ApplyOp)):
                raise ValueError(
                    f"pipeline '{spec}' schedules no stencil lowering stage: "
                    "add 'convert-stencil-to-hls' (or the stencil-* sub-passes)"
                )
            raise ValueError(
                "module contains no stencil kernel to compile "
                f"(pipeline: '{spec}')"
            )

        # A plan without AXI bundle assignment synthesises into a nonsense
        # design (zero ports): complete the pipeline while the HLS-dialect
        # interface ops are still around, or refuse if they are already gone.
        if lowering.unbundled_kernels:
            if "hls" in snapshots:
                raise ValueError(
                    "pipeline lowered to LLVM before 'hls-bundle-assignment' "
                    f"ran for kernel(s) {', '.join(sorted(lowering.unbundled_kernels))}; "
                    "schedule it before convert-hls-to-llvm"
                )
            bundle = PassManager([HLSBundleAssignmentPass()], context=context)
            bundle.run(working)
            statistics.extend(bundle.statistics)
            plans = dict(lowering.plans)

        hls_module = snapshots.get("hls")
        if any(isinstance(op, hls.DIALECT_OPERATIONS) for op in working.walk()):
            # The custom pipeline stopped at (or never left) the HLS dialect:
            # snapshot it and finish the mandatory LLVM lowering implicitly.
            if hls_module is None:
                hls_module = working.clone()
            tail = PassManager([HLSToLLVMPass()], context=context)
            tail.run(working)
            statistics.extend(tail.statistics)
        elif hls_module is None:
            hls_module = working.clone()

        fpp_report = run_fpp(working)

        return MiddleEndResult(
            hls_module=hls_module,
            llvm_module=working,
            plans=plans,
            fpp_report=fpp_report,
            pass_statistics=statistics,
        )
