"""The dataflow plan: a structured description of the generated FPGA kernel.

The stencil→HLS transformation produces two artefacts: the HLS-dialect IR
(what is lowered further to annotated LLVM-IR and handed to the backend) and
a :class:`DataflowPlan` describing the same structure in an analysable form.
The plan is what the synthesis model, the functional dataflow simulator, the
resource/power models and the evaluation reports consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.config import CompilerOptions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (transforms imports plan)
    from repro.transforms.stencil_analysis import StencilKernelAnalysis


@dataclass
class StreamSpec:
    """One HLS FIFO stream created by the transformation."""

    name: str
    kind: str                 # 'raw_in' | 'window' | 'window_copy' | 'result'
    element_bits: int
    depth: int
    producer: str = ""
    consumer: str = ""


@dataclass
class InterfaceSpec:
    """AXI interface assignment for one kernel argument (step 9)."""

    arg_name: str
    bundle: str
    protocol: str             # 'm_axi' | 's_axilite'
    direction: str            # 'in' | 'out' | 'inout'
    is_small_data: bool = False
    packed_lanes: int = 1
    element_bits: int = 64


@dataclass
class LoadSpec:
    """The specialised ``load_data`` call of one wave (step 7)."""

    callee: str
    fields: list[str]
    lanes: int
    grid_shape: tuple[int, ...]
    field_lower: dict[str, tuple[int, ...]] = field(default_factory=dict)


@dataclass
class ShiftSpec:
    """One ``shift_buffer`` dataflow stage (one per input field per wave)."""

    callee: str
    field_name: str
    grid_shape: tuple[int, ...]
    field_lower: tuple[int, ...]
    domain_lower: tuple[int, ...]
    domain_upper: tuple[int, ...]
    radius: int
    window_offsets: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def window_size(self) -> int:
        return len(self.window_offsets)

    @property
    def buffer_elements(self) -> int:
        """Elements held on chip by the shift buffer (2·radius planes + window)."""
        if len(self.grid_shape) == 0:
            return 0
        plane = 1
        for extent in self.grid_shape[1:]:
            plane *= extent
        return 2 * self.radius * plane + self.window_size


@dataclass
class DuplicateSpec:
    """Stream duplication stage feeding several compute stages (step 3)."""

    callee: str
    field_name: str
    source_stream: str
    copies: list[str]


@dataclass
class ComputeStageSpec:
    """One per-output-field compute dataflow stage (steps 4 and 5)."""

    label: str
    stage_index: int
    wave: int
    output_fields: list[str]
    input_windows: dict[str, str]      # field name -> window stream name
    small_data: list[str]
    flops_per_point: int
    window_size: int
    domain_points: int
    ii: int = 1


@dataclass
class WriteFieldSpec:
    field_name: str
    lower: tuple[int, ...]
    upper: tuple[int, ...]
    field_lower: tuple[int, ...]
    grid_shape: tuple[int, ...]


@dataclass
class WriteSpec:
    """The ``write_data`` call of one wave (step 6)."""

    callee: str
    fields: list[WriteFieldSpec]
    lanes: int


@dataclass
class SmallDataCopySpec:
    """A BRAM/URAM copy of small constant data for one compute stage (step 8)."""

    arg_name: str
    stage_label: str
    elements: int
    element_bits: int


@dataclass
class WavePlan:
    """All dataflow stages of one dependency wave."""

    index: int
    load: LoadSpec
    shifts: list[ShiftSpec]
    duplicates: list[DuplicateSpec]
    computes: list[ComputeStageSpec]
    write: WriteSpec

    @property
    def num_concurrent_stages(self) -> int:
        return 1 + len(self.shifts) + len(self.duplicates) + len(self.computes) + 1


@dataclass
class DataflowPlan:
    """Complete description of the generated dataflow kernel."""

    kernel_name: str
    analysis: "StencilKernelAnalysis"
    options: CompilerOptions
    waves: list[WavePlan] = field(default_factory=list)
    streams: list[StreamSpec] = field(default_factory=list)
    interfaces: list[InterfaceSpec] = field(default_factory=list)
    small_copies: list[SmallDataCopySpec] = field(default_factory=list)

    # -- derived quantities -----------------------------------------------------

    @property
    def rank(self) -> int:
        return self.analysis.rank

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self.analysis.grid_shape

    @property
    def domain_points(self) -> int:
        return self.analysis.domain_points

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    @property
    def num_compute_stages(self) -> int:
        return sum(len(w.computes) for w in self.waves)

    @property
    def ports_per_cu(self) -> int:
        bundles = {i.bundle for i in self.interfaces if i.protocol == "m_axi"}
        return len(bundles)

    @property
    def on_chip_buffer_bits(self) -> int:
        """Bits of BRAM/URAM the kernel needs (shift buffers, FIFOs, copies)."""
        bits = 0
        for wave in self.waves:
            for shift in wave.shifts:
                bits += shift.buffer_elements * 64
        for stream in self.streams:
            bits += stream.element_bits * stream.depth
        for copy in self.small_copies:
            bits += copy.elements * copy.element_bits
        return bits

    def stream_by_name(self, name: str) -> StreamSpec:
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise KeyError(f"no stream named '{name}' in plan")

    def interface_for(self, arg_name: str) -> InterfaceSpec:
        for interface in self.interfaces:
            if interface.arg_name == arg_name:
                return interface
        raise KeyError(f"no interface for argument '{arg_name}'")

    def summary(self) -> str:
        lines = [
            f"kernel          : {self.kernel_name}",
            f"grid            : {'x'.join(map(str, self.grid_shape))} ({self.domain_points} domain points)",
            f"waves           : {self.num_waves}",
            f"compute stages  : {self.num_compute_stages}",
            f"streams         : {len(self.streams)}",
            f"m_axi bundles   : {self.ports_per_cu}",
            f"small data copies: {len(self.small_copies)}",
        ]
        return "\n".join(lines)
