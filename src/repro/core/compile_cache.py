"""Content-addressed compile-session cache.

Entries are keyed by a :class:`CacheKey` — the canonical module hash
(:func:`repro.ir.hashing.module_hash`), the *canonicalised* pass-pipeline
spec (:func:`repro.ir.pass_registry.canonical_pipeline_spec`, so option
differences such as ``stencil-to-hls{pack=0}`` vs ``{pack=1}`` can never
collide), a fingerprint of the compiler options and a free-form ``extra``
discriminator (device, clock, framework, …) — plus a *stage* name, so the
compiler can reuse per-stage artefacts independently:

* ``middle-end``  — device-independent pass-pipeline output
  (HLS/LLVM modules, dataflow plans, f++ report, pass statistics)
* ``synthesis``   — the device-specific :class:`KernelDesign`
* ``result``      — a whole evaluation-harness :class:`FrameworkResult`

The cache is tiered: a per-process in-memory store (values are held as
objects; callers clone mutable IR on the way in/out), an optional
on-disk tier under ``cache_dir`` (written atomically so parallel
evaluation workers can share one directory), and an optional *shared
network tier* under ``remote_dir`` — any filesystem path several machines
can mount (NFS, sshfs, a synced directory).  The remote tier is
read-through/write-back: a local miss that hits the remote tier copies
the artefact into the local tier, and fresh local stores are published
back with the same atomic temp-file-then-rename protocol, so concurrent
writers on different machines never observe torn entries.  Keys are
content hashes, so cross-machine and cross-user dedup needs no
coordination at all.  Hit/miss/store counts are recorded per stage and
surfaced by ``--timing`` / the bench CLI.

Storage formats
---------------

Two on-disk formats are supported (``fmt=`` / ``--cache-format``):

* ``pickle`` (default) — one pickle blob per entry (``.pkl``), fully
  deserialised on every hit.
* ``mapped`` — a sectioned container (``.shmc``): a small JSON header
  naming lazily-decoded sections, restored via ``mmap`` so a hit only
  ever touches the header plus the sections the consumer actually
  decodes.  Values that implement the *mapped codec protocol*
  (``__mapped_sections__`` / ``__from_mapped__``, see
  :class:`~repro.core.pipeline.PassPrefixArtifact`) split into multiple
  sections; everything else round-trips through a single ``value``
  section.  Decoding always builds fresh private objects, so mapped
  stores are implicitly isolated — there is no shared mutable state
  between the cache and its callers.

Both formats share the tiering, atomic publishing, stats, and gc logic;
a cache instance reads and writes only its own format's extension, so a
fleet must use one format consistently per cache directory.
"""

from __future__ import annotations

import importlib
import json
import mmap
import os
import pickle
import struct
import sys
import tempfile
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

#: Pickling an IR module recurses through its use-def web, whose depth grows
#: with program length; the default interpreter limit (1000) is too small for
#: the larger benchmark kernels.
_PICKLE_RECURSION_LIMIT = 100_000

_recursion_lock = threading.Lock()
_recursion_floor_set = False


def _ensure_pickle_recursion_floor() -> None:
    """Raise the process recursion limit to the pickling floor, once.

    A set-once floor (never lowered, never restored) is reentrancy-safe:
    the previous save/mutate/restore dance could clobber a parallel
    caller's restore and leave the process at an arbitrary limit.
    """
    global _recursion_floor_set
    if _recursion_floor_set:
        return
    with _recursion_lock:
        if _recursion_floor_set:
            return
        if sys.getrecursionlimit() < _PICKLE_RECURSION_LIMIT:
            sys.setrecursionlimit(_PICKLE_RECURSION_LIMIT)
        _recursion_floor_set = True


#: The storage formats `CompileCache` understands.
CACHE_FORMATS = ("pickle", "mapped")


@dataclass(frozen=True)
class CacheKey:
    """Content address of one compilation session.

    Keys are value objects; :meth:`digest` mixes in the *stage* name so
    one session can store several independent artefacts.  They serialise
    losslessly to JSON (:meth:`as_dict` / :meth:`from_dict`), which is how
    the orchestrator's resumability manifest records completed cases.

    >>> key = CacheKey(module_hash="abc", pipeline="canonicalize")
    >>> CacheKey.from_dict(key.as_dict()) == key
    True
    >>> key.digest("result") == key.digest("result")
    True
    >>> key.digest("result") != key.digest("middle-end")
    True
    """

    module_hash: str
    pipeline: str = ""
    options: str = ""
    extra: str = ""

    def digest(self, stage: str) -> str:
        """Stable hex digest of this key for one stage name."""
        from repro.ir.hashing import fingerprint_text

        return fingerprint_text(
            "\x1f".join((stage, self.module_hash, self.pipeline, self.options, self.extra))
        )

    def as_dict(self) -> dict[str, str]:
        """This key as a JSON-safe dict (the manifest export form)."""
        return {
            "module_hash": self.module_hash,
            "pipeline": self.pipeline,
            "options": self.options,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, entry: dict[str, str]) -> "CacheKey":
        """Rebuild a key exported by :meth:`as_dict`."""
        return cls(
            module_hash=entry["module_hash"],
            pipeline=entry.get("pipeline", ""),
            options=entry.get("options", ""),
            extra=entry.get("extra", ""),
        )


class _LazyBlob:
    """Memory-tier placeholder: pickled bytes deserialised on first hit.

    ``put(isolate=True)`` already has the serialised form in hand for the
    disk tier; keeping the bytes (instead of eagerly unpickling a private
    copy) makes cold-path stores one ``dumps`` total, and lookups that
    never hit the entry never pay the ``loads``.
    """

    __slots__ = ("blob",)

    def __init__(self, blob: bytes) -> None:
        self.blob = blob


# ---------------------------------------------------------------------------
# Mapped container format
# ---------------------------------------------------------------------------

#: Mapped container: magic + u32 JSON-header length + header + sections.
_MAPPED_MAGIC = b"SHMC0001"
_MAPPED_HEADER_LEN = struct.Struct("<I")


def _codec_name(value: Any) -> str:
    cls = type(value)
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_codec(name: str) -> type:
    module_name, _, qualname = name.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def encode_mapped(value: Any) -> bytes:
    """Encode ``value`` as a mapped container (header + pickled sections).

    Values implementing ``__mapped_sections__() -> (meta, {name: obj})``
    split into independently-decodable sections restored through their
    class's ``__from_mapped__``; anything else becomes one ``value``
    section with an empty codec.
    """
    if hasattr(value, "__mapped_sections__"):
        codec = _codec_name(value)
        meta, parts = value.__mapped_sections__()
    else:
        codec, meta, parts = "", {}, {"value": value}
    payloads: list[bytes] = []
    sections: dict[str, list[int]] = {}
    offset = 0
    for name, obj in parts.items():
        blob = CompileCache._dumps(obj)
        sections[name] = [offset, len(blob)]
        offset += len(blob)
        payloads.append(blob)
    header = json.dumps(
        {"codec": codec, "meta": meta, "sections": sections},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return b"".join(
        [_MAPPED_MAGIC, _MAPPED_HEADER_LEN.pack(len(header)), header, *payloads]
    )


class MappedBlob:
    """One mapped container over bytes or an ``mmap`` buffer.

    Only the header is parsed up front; :meth:`section` unpickles a
    section's byte range on demand, and :meth:`decode` rebuilds the
    stored value through its codec — a *fresh private object* per call,
    which is what makes the mapped memory tier isolation-free-by-design.
    """

    __slots__ = ("_buffer", "_handle", "_payload_start", "codec", "meta", "_sections")

    def __init__(self, buffer: Any, handle: Any = None) -> None:
        self._buffer = buffer
        self._handle = handle
        magic_len = len(_MAPPED_MAGIC)
        prefix = magic_len + _MAPPED_HEADER_LEN.size
        if len(buffer) < prefix or bytes(buffer[:magic_len]) != _MAPPED_MAGIC:
            raise ValueError("not a mapped cache container")
        (header_len,) = _MAPPED_HEADER_LEN.unpack_from(buffer, magic_len)
        if len(buffer) < prefix + header_len:
            raise ValueError("truncated mapped container header")
        header = json.loads(bytes(buffer[prefix : prefix + header_len]))
        self._payload_start = prefix + header_len
        self.codec = header["codec"]
        self.meta = header["meta"]
        self._sections = header["sections"]

    @classmethod
    def from_file(cls, path: Path) -> "MappedBlob":
        """Map ``path`` read-only; sections decode straight off the page
        cache without ever copying the whole artefact into python."""
        handle = path.open("rb")
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            return cls(mapped, handle)
        except (ValueError, OSError):
            handle.close()
            raise

    def has_section(self, name: str) -> bool:
        return name in self._sections

    def section_names(self) -> list[str]:
        return list(self._sections)

    def section(self, name: str) -> Any:
        """Unpickle one section's byte range (lazy; nothing else is read)."""
        offset, length = self._sections[name]
        start = self._payload_start + offset
        return CompileCache._loads(bytes(self._buffer[start : start + length]))

    def decode(self) -> Any:
        """Rebuild the stored value (fresh private objects every call)."""
        if not self.codec:
            return self.section("value")
        cls = _resolve_codec(self.codec)
        return cls.__from_mapped__(self.meta, self.section, self.has_section)

    def close(self) -> None:
        if isinstance(self._buffer, mmap.mmap):
            try:
                self._buffer.close()
            except Exception:
                pass
        if self._handle is not None:
            try:
                self._handle.close()
            except Exception:
                pass
            self._handle = None

    def __del__(self) -> None:  # pragma: no cover - best-effort fd cleanup
        try:
            self.close()
        except Exception:
            pass


@dataclass
class CacheStats:
    """Per-stage hit/miss/store counters."""

    hits: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    misses: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    stores: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    errors: int = 0
    #: Presence checks answered by :meth:`CompileCache.probe` (which never
    #: touch the hit/miss counters — they restore nothing).
    probes: int = 0
    #: Entries removed by :meth:`CompileCache.gc` and the bytes they held.
    evicted_entries: int = 0
    evicted_bytes: int = 0
    #: On-disk footprint after the most recent ``gc``/``disk_bytes`` scan.
    disk_bytes: int = 0
    #: Shared-network-tier traffic: local misses served by ``remote_dir``
    #: (each also counts as a stage hit) and artefacts published back.
    remote_hits: int = 0
    remote_stores: int = 0

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def as_dict(self) -> dict[str, Any]:
        stages = sorted(set(self.hits) | set(self.misses) | set(self.stores))
        return {
            "hits": self.total_hits,
            "misses": self.total_misses,
            "errors": self.errors,
            "probes": self.probes,
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "disk_bytes": self.disk_bytes,
            "remote_hits": self.remote_hits,
            "remote_stores": self.remote_stores,
            "stages": {
                stage: {
                    "hits": self.hits.get(stage, 0),
                    "misses": self.misses.get(stage, 0),
                    "stores": self.stores.get(stage, 0),
                }
                for stage in stages
            },
        }

    def summary_lines(self) -> list[str]:
        lines = [f"cache hits: {self.total_hits}, misses: {self.total_misses}"]
        for stage, counts in self.as_dict()["stages"].items():
            lines.append(
                f"  {stage:<12} hits={counts['hits']} misses={counts['misses']} "
                f"stores={counts['stores']}"
            )
        if self.disk_bytes or self.evicted_entries:
            lines.append(
                f"  disk: {self.disk_bytes} bytes"
                f" (evicted {self.evicted_entries} entries"
                f" / {self.evicted_bytes} bytes)"
            )
        if self.remote_hits or self.remote_stores:
            lines.append(
                f"  remote tier: {self.remote_hits} hits,"
                f" {self.remote_stores} stores"
            )
        return lines


class CompileCache:
    """Tiered (memory + optional disk + optional network) content-addressed
    artefact store.

    >>> cache = CompileCache()                       # memory-only tier
    >>> key = CacheKey(module_hash="abc", pipeline="canonicalize")
    >>> cache.get(key, "result") is None             # cold: a miss
    True
    >>> cache.put(key, "result", {"mpts": 1.5})
    >>> cache.get(key, "result")
    {'mpts': 1.5}
    >>> cache.stats.total_hits, cache.stats.total_misses
    (1, 1)

    The mapped format stores sectioned, lazily-decoded containers and
    always hands back fresh private objects:

    >>> mapped = CompileCache(fmt="mapped")
    >>> mapped.put(key, "result", {"mpts": 1.5})
    >>> hit = mapped.get(key, "result")
    >>> hit == {'mpts': 1.5} and hit is not mapped.get(key, "result")
    True

    Pass ``cache_dir`` to add the on-disk tier (written atomically, safe
    to share between parallel evaluation workers) and ``remote_dir`` to
    add the shared network tier behind it (a mounted NFS/sshfs path;
    read-through on miss, write-back on store, same atomic-rename
    publishing — so warm artefacts dedup across machines).
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        *,
        remote_dir: str | Path | None = None,
        fmt: str = "pickle",
    ) -> None:
        if fmt not in CACHE_FORMATS:
            raise ValueError(f"unknown cache format {fmt!r}; expected one of {CACHE_FORMATS}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.remote_dir = Path(remote_dir) if remote_dir is not None else None
        self.fmt = fmt
        self._ext = ".pkl" if fmt == "pickle" else ".shmc"
        self._memory: dict[str, Any] = {}
        #: Incremental on-disk footprint; ``None`` until the first
        #: ``disk_bytes()``/``gc()`` rescan establishes the baseline.
        self._disk_bytes_counter: int | None = None
        #: One instance may be shared by several threads (the compile
        #: service runs request compiles on an executor while its event
        #: loop probes/serves warm hits): the memory tier, the stats
        #: counters and the incremental byte counter mutate under this
        #: lock.  Disk/remote tiers were already multi-process safe.
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- paths ----------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / digest[:2] / f"{digest}{self._ext}"

    def _remote_path(self, digest: str) -> Path:
        assert self.remote_dir is not None
        return self.remote_dir / digest[:2] / f"{digest}{self._ext}"

    # -- pickle helpers -------------------------------------------------------

    @staticmethod
    def _dumps(value: Any) -> bytes:
        _ensure_pickle_recursion_floor()
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _loads(blob: bytes) -> Any:
        _ensure_pickle_recursion_floor()
        return pickle.loads(blob)

    # -- core API -------------------------------------------------------------

    def get(
        self,
        key: CacheKey,
        stage: str,
        *,
        rehydrate: Callable[[Any], Any] | None = None,
    ) -> Any | None:
        """Look up one stage artefact; ``None`` means miss.

        ``rehydrate`` post-processes the stored value (e.g. cloning cached
        IR modules so callers can mutate their copy freely).  Lookup order
        is memory → local disk → shared remote tier; a remote hit is
        copied read-through into the local tiers.  In mapped mode the
        disk tier is ``mmap``'d and decoded per section on demand, and
        every hit decodes to fresh private objects.
        """
        digest = key.digest(stage)
        with self._lock:
            value = (
                self._get_mapped(digest) if self.fmt == "mapped" else self._get_pickle(digest)
            )
            if value is None:
                self.stats.misses[stage] += 1
                return None
            self.stats.hits[stage] += 1
        return rehydrate(value) if rehydrate is not None else value

    def probe(self, key: CacheKey, stage: str) -> bool:
        """Hit check *without restoring*: is the artefact in any tier?

        Nothing is unpickled, decoded or promoted between tiers, and the
        hit/miss counters are untouched — so a front-door service can
        answer "would this request be warm?" (admission control, the
        cache fast path) without paying a restore or skewing the stats
        that record real serves.  Probes are counted separately.

        >>> cache = CompileCache()
        >>> key = CacheKey(module_hash="abc")
        >>> cache.probe(key, "result")
        False
        >>> cache.put(key, "result", {"mpts": 2.0})
        >>> cache.probe(key, "result")
        True
        >>> cache.stats.total_hits, cache.stats.total_misses
        (0, 0)
        """
        digest = key.digest(stage)
        with self._lock:
            self.stats.probes += 1
            if digest in self._memory:
                return True
        if self.cache_dir is not None and self._path(digest).is_file():
            return True
        if self.remote_dir is not None and self._remote_path(digest).is_file():
            return True
        return False

    def _get_pickle(self, digest: str) -> Any | None:
        value: Any | None = None
        if digest in self._memory:
            value = self._memory[digest]
            if isinstance(value, _LazyBlob):
                try:
                    value = self._loads(value.blob)
                    self._memory[digest] = value
                except Exception:
                    # The bytes came from our own dumps; a failure here is
                    # a corrupt entry, not a reason to retry the disk copy.
                    self.stats.errors += 1
                    del self._memory[digest]
                    value = None
        else:
            blob, tier = self._read_tiers(digest)
            if blob is not None:
                try:
                    value = self._loads(blob)
                    self._memory[digest] = value
                except Exception:
                    # A truncated/stale/unreadable entry is a miss, not a crash.
                    self.stats.errors += 1
                    value = None
                else:
                    self._after_tier_hit(digest, tier, blob)
        return value

    def _get_mapped(self, digest: str) -> Any | None:
        mapped: MappedBlob | None = self._memory.get(digest)
        if mapped is None:
            if self.cache_dir is not None:
                try:
                    mapped = MappedBlob.from_file(self._path(digest))
                except OSError:
                    mapped = None
                except ValueError:
                    self.stats.errors += 1
                    mapped = None
                else:
                    self._after_tier_hit(digest, "disk", None)
            if mapped is None and self.remote_dir is not None:
                try:
                    blob = self._remote_path(digest).read_bytes()
                except OSError:
                    blob = None
                if blob is not None:
                    try:
                        mapped = MappedBlob(blob)
                    except ValueError:
                        self.stats.errors += 1
                        mapped = None
                    else:
                        self._after_tier_hit(digest, "remote", blob)
            if mapped is None:
                return None
            self._memory[digest] = mapped
        try:
            return mapped.decode()
        except Exception:
            # Undecodable sections (e.g. shared-intern references without
            # an active table) degrade to a miss + recompile.
            self.stats.errors += 1
            self._memory.pop(digest, None)
            mapped.close()
            return None

    def _read_tiers(self, digest: str) -> tuple[bytes | None, str | None]:
        """Raw bytes for ``digest`` from local disk, then the remote tier."""
        if self.cache_dir is not None:
            try:
                return self._path(digest).read_bytes(), "disk"
            except OSError:
                pass
        if self.remote_dir is not None:
            try:
                return self._remote_path(digest).read_bytes(), "remote"
            except OSError:
                pass
        return None, None

    def _after_tier_hit(self, digest: str, tier: str | None, blob: bytes | None) -> None:
        if tier == "disk":
            # Refresh mtime so gc()'s LRU sees *use* recency, not just
            # store recency — hot entries must outlive cold one-offs in
            # long-lived shared directories.
            try:
                os.utime(self._path(digest))
            except OSError:
                pass
        elif tier == "remote":
            self.stats.remote_hits += 1
            if self.cache_dir is not None and blob is not None:
                # Read-through: future lookups (and gc accounting) are
                # served locally, with a fresh mtime.
                self._write_local(self._path(digest), blob)

    def put(self, key: CacheKey, stage: str, value: Any, *, isolate: bool = False) -> None:
        """Store one stage artefact.

        With ``isolate=True`` the cache serialises ``value`` once and keeps
        the *bytes* in the memory tier (deserialised lazily on first hit;
        the same bytes go to disk), so callers may keep mutating the live
        object after the call without re-pickling it themselves.  The
        mapped format encodes immediately — it is always isolated — so
        the flag is a no-op there.  A store lands in every configured
        tier: memory, local disk and — written back with the same atomic
        rename — the shared remote directory.
        """
        digest = key.digest(stage)
        with self._lock:
            if self.fmt == "mapped":
                try:
                    blob = encode_mapped(value)
                except Exception:
                    # Unencodable artefacts cannot be stored in this format.
                    self.stats.errors += 1
                    return
                self._memory[digest] = MappedBlob(blob)
                self.stats.stores[stage] += 1
            else:
                blob = None
                if isolate:
                    try:
                        blob = self._dumps(value)
                    except Exception:
                        # Unpicklable artefacts cannot be isolated: skip the store.
                        self.stats.errors += 1
                        return
                    value = _LazyBlob(blob)
                self._memory[digest] = value
                self.stats.stores[stage] += 1
                if self.cache_dir is None and self.remote_dir is None:
                    return
                if blob is None:
                    try:
                        blob = self._dumps(value)
                    except Exception:
                        # Unpicklable artefacts stay memory-tier only.
                        self.stats.errors += 1
                        return
            if self.cache_dir is not None:
                self._write_local(self._path(digest), blob)
            if self.remote_dir is not None and self._write_atomic(
                self._remote_path(digest), blob
            ):
                self.stats.remote_stores += 1

    def _write_local(self, path: Path, blob: bytes) -> bool:
        """Write to the local disk tier, keeping the incremental byte
        counter in step (an overwrite replaces the old entry's bytes)."""
        old = 0
        if self._disk_bytes_counter is not None:
            try:
                old = path.stat().st_size
            except OSError:
                old = 0
        ok = self._write_atomic(path, blob)
        if ok and self._disk_bytes_counter is not None:
            self._disk_bytes_counter += len(blob) - old
        return ok

    def _write_atomic(self, path: Path, blob: bytes) -> bool:
        """Publish ``blob`` at ``path`` via temp-file + same-directory
        rename (atomic on POSIX filesystems, including NFS mounts), so
        parallel writers on any machine never observe a torn entry."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.errors += 1
            return False
        return True

    # -- maintenance ----------------------------------------------------------

    def _disk_entries(self) -> list[tuple[float, int, Path]]:
        """Every on-disk entry as ``(mtime, size, path)``, oldest first."""
        assert self.cache_dir is not None
        entries: list[tuple[float, int, Path]] = []
        for pattern in ("*/*.pkl", "*/*.shmc"):
            for path in self.cache_dir.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # a parallel writer/GC raced us; skip
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda e: (e[0], e[2].name))
        return entries

    def disk_bytes(self) -> int:
        """Current on-disk footprint of the cache directory (0 if memory-only).

        The directory is scanned once to establish a baseline; afterwards
        the footprint is tracked incrementally on every local write, so
        ``--timing`` on a large warm cache stops paying an O(entries)
        ``glob`` + ``stat`` rescan per stats read.  (``gc`` rescans — it
        is the authoritative resync point, picking up entries written by
        *other* processes sharing the directory.)
        """
        if self.cache_dir is None:
            return 0
        with self._lock:
            if self._disk_bytes_counter is None:
                self._disk_bytes_counter = sum(
                    size for _, size, _ in self._disk_entries()
                )
            self.stats.disk_bytes = self._disk_bytes_counter
            return self._disk_bytes_counter

    def gc(self, max_bytes: int) -> int:
        """Evict least-recently-used disk entries until ≤ ``max_bytes`` remain.

        LRU is approximated by file mtime, which :meth:`get` refreshes on
        every disk-tier hit (best-effort) — so a hot, constantly-reused
        artefact outlives a cold one-off store even in long-lived shared
        cache directories.  Returns the number of evicted entries; the
        memory tier is left untouched (it dies with the process anyway)
        and the shared remote tier is never evicted from here (each
        machine gc's only its own local tier).
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if self.cache_dir is None:
            return 0
        with self._lock:
            return self._gc_locked(max_bytes)

    def _gc_locked(self, max_bytes: int) -> int:
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                self.stats.errors += 1
                continue
            total -= size
            evicted += 1
            self.stats.evicted_entries += 1
            self.stats.evicted_bytes += size
        # Authoritative resync of the incremental counter: the full scan
        # above also saw entries written by other processes.
        self._disk_bytes_counter = total
        self.stats.disk_bytes = total
        return evicted

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier, if any, stays)."""
        with self._lock:
            for value in self._memory.values():
                if isinstance(value, MappedBlob):
                    value.close()
            self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
