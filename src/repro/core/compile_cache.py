"""Content-addressed compile-session cache.

Entries are keyed by a :class:`CacheKey` — the canonical module hash
(:func:`repro.ir.hashing.module_hash`), the *canonicalised* pass-pipeline
spec (:func:`repro.ir.pass_registry.canonical_pipeline_spec`, so option
differences such as ``stencil-to-hls{pack=0}`` vs ``{pack=1}`` can never
collide), a fingerprint of the compiler options and a free-form ``extra``
discriminator (device, clock, framework, …) — plus a *stage* name, so the
compiler can reuse per-stage artefacts independently:

* ``middle-end``  — device-independent pass-pipeline output
  (HLS/LLVM modules, dataflow plans, f++ report, pass statistics)
* ``synthesis``   — the device-specific :class:`KernelDesign`
* ``result``      — a whole evaluation-harness :class:`FrameworkResult`

The cache is tiered: a per-process in-memory store (values are held as
objects; callers clone mutable IR on the way in/out), an optional
on-disk tier under ``cache_dir`` (pickled, written atomically so parallel
evaluation workers can share one directory), and an optional *shared
network tier* under ``remote_dir`` — any filesystem path several machines
can mount (NFS, sshfs, a synced directory).  The remote tier is
read-through/write-back: a local miss that hits the remote tier copies
the artefact into the local tier, and fresh local stores are published
back with the same atomic temp-file-then-rename protocol, so concurrent
writers on different machines never observe torn entries.  Keys are
content hashes, so cross-machine and cross-user dedup needs no
coordination at all.  Hit/miss/store counts are recorded per stage and
surfaced by ``--timing`` / the bench CLI.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

#: Pickling an IR module recurses through its use-def web, whose depth grows
#: with program length; the default interpreter limit (1000) is too small for
#: the larger benchmark kernels.
_PICKLE_RECURSION_LIMIT = 100_000


@dataclass(frozen=True)
class CacheKey:
    """Content address of one compilation session.

    Keys are value objects; :meth:`digest` mixes in the *stage* name so
    one session can store several independent artefacts.  They serialise
    losslessly to JSON (:meth:`as_dict` / :meth:`from_dict`), which is how
    the orchestrator's resumability manifest records completed cases.

    >>> key = CacheKey(module_hash="abc", pipeline="canonicalize")
    >>> CacheKey.from_dict(key.as_dict()) == key
    True
    >>> key.digest("result") == key.digest("result")
    True
    >>> key.digest("result") != key.digest("middle-end")
    True
    """

    module_hash: str
    pipeline: str = ""
    options: str = ""
    extra: str = ""

    def digest(self, stage: str) -> str:
        """Stable hex digest of this key for one stage name."""
        from repro.ir.hashing import fingerprint_text

        return fingerprint_text(
            "\x1f".join((stage, self.module_hash, self.pipeline, self.options, self.extra))
        )

    def as_dict(self) -> dict[str, str]:
        """This key as a JSON-safe dict (the manifest export form)."""
        return {
            "module_hash": self.module_hash,
            "pipeline": self.pipeline,
            "options": self.options,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, entry: dict[str, str]) -> "CacheKey":
        """Rebuild a key exported by :meth:`as_dict`."""
        return cls(
            module_hash=entry["module_hash"],
            pipeline=entry.get("pipeline", ""),
            options=entry.get("options", ""),
            extra=entry.get("extra", ""),
        )


class _LazyBlob:
    """Memory-tier placeholder: pickled bytes deserialised on first hit.

    ``put(isolate=True)`` already has the serialised form in hand for the
    disk tier; keeping the bytes (instead of eagerly unpickling a private
    copy) makes cold-path stores one ``dumps`` total, and lookups that
    never hit the entry never pay the ``loads``.
    """

    __slots__ = ("blob",)

    def __init__(self, blob: bytes) -> None:
        self.blob = blob


@dataclass
class CacheStats:
    """Per-stage hit/miss/store counters."""

    hits: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    misses: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    stores: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    errors: int = 0
    #: Entries removed by :meth:`CompileCache.gc` and the bytes they held.
    evicted_entries: int = 0
    evicted_bytes: int = 0
    #: On-disk footprint after the most recent ``gc``/``disk_bytes`` scan.
    disk_bytes: int = 0
    #: Shared-network-tier traffic: local misses served by ``remote_dir``
    #: (each also counts as a stage hit) and artefacts published back.
    remote_hits: int = 0
    remote_stores: int = 0

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def as_dict(self) -> dict[str, Any]:
        stages = sorted(set(self.hits) | set(self.misses) | set(self.stores))
        return {
            "hits": self.total_hits,
            "misses": self.total_misses,
            "errors": self.errors,
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "disk_bytes": self.disk_bytes,
            "remote_hits": self.remote_hits,
            "remote_stores": self.remote_stores,
            "stages": {
                stage: {
                    "hits": self.hits.get(stage, 0),
                    "misses": self.misses.get(stage, 0),
                    "stores": self.stores.get(stage, 0),
                }
                for stage in stages
            },
        }

    def summary_lines(self) -> list[str]:
        lines = [f"cache hits: {self.total_hits}, misses: {self.total_misses}"]
        for stage, counts in self.as_dict()["stages"].items():
            lines.append(
                f"  {stage:<12} hits={counts['hits']} misses={counts['misses']} "
                f"stores={counts['stores']}"
            )
        if self.disk_bytes or self.evicted_entries:
            lines.append(
                f"  disk: {self.disk_bytes} bytes"
                f" (evicted {self.evicted_entries} entries"
                f" / {self.evicted_bytes} bytes)"
            )
        if self.remote_hits or self.remote_stores:
            lines.append(
                f"  remote tier: {self.remote_hits} hits,"
                f" {self.remote_stores} stores"
            )
        return lines


class CompileCache:
    """Tiered (memory + optional disk + optional network) content-addressed
    artefact store.

    >>> cache = CompileCache()                       # memory-only tier
    >>> key = CacheKey(module_hash="abc", pipeline="canonicalize")
    >>> cache.get(key, "result") is None             # cold: a miss
    True
    >>> cache.put(key, "result", {"mpts": 1.5})
    >>> cache.get(key, "result")
    {'mpts': 1.5}
    >>> cache.stats.total_hits, cache.stats.total_misses
    (1, 1)

    Pass ``cache_dir`` to add the on-disk tier (pickled, written
    atomically, safe to share between parallel evaluation workers) and
    ``remote_dir`` to add the shared network tier behind it (a mounted
    NFS/sshfs path; read-through on miss, write-back on store, same
    atomic-rename publishing — so warm artefacts dedup across machines).
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        *,
        remote_dir: str | Path | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.remote_dir = Path(remote_dir) if remote_dir is not None else None
        self._memory: dict[str, Any] = {}
        self.stats = CacheStats()

    # -- paths ----------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / digest[:2] / f"{digest}.pkl"

    def _remote_path(self, digest: str) -> Path:
        assert self.remote_dir is not None
        return self.remote_dir / digest[:2] / f"{digest}.pkl"

    # -- pickle helpers -------------------------------------------------------

    @staticmethod
    def _dumps(value: Any) -> bytes:
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(max(limit, _PICKLE_RECURSION_LIMIT))
            return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            sys.setrecursionlimit(limit)

    @staticmethod
    def _loads(blob: bytes) -> Any:
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(max(limit, _PICKLE_RECURSION_LIMIT))
            return pickle.loads(blob)
        finally:
            sys.setrecursionlimit(limit)

    # -- core API -------------------------------------------------------------

    def get(
        self,
        key: CacheKey,
        stage: str,
        *,
        rehydrate: Callable[[Any], Any] | None = None,
    ) -> Any | None:
        """Look up one stage artefact; ``None`` means miss.

        ``rehydrate`` post-processes the stored value (e.g. cloning cached
        IR modules so callers can mutate their copy freely).  Lookup order
        is memory → local disk → shared remote tier; a remote hit is
        copied read-through into the local tiers.
        """
        digest = key.digest(stage)
        value: Any | None = None
        if digest in self._memory:
            value = self._memory[digest]
            if isinstance(value, _LazyBlob):
                try:
                    value = self._loads(value.blob)
                    self._memory[digest] = value
                except Exception:
                    # The bytes came from our own dumps; a failure here is
                    # a corrupt entry, not a reason to retry the disk copy.
                    self.stats.errors += 1
                    del self._memory[digest]
                    value = None
        else:
            blob: bytes | None = None
            tier = None
            if self.cache_dir is not None:
                try:
                    blob = self._path(digest).read_bytes()
                    tier = "disk"
                except OSError:
                    blob = None
            if blob is None and self.remote_dir is not None:
                try:
                    blob = self._remote_path(digest).read_bytes()
                    tier = "remote"
                except OSError:
                    blob = None
            if blob is not None:
                try:
                    value = self._loads(blob)
                    self._memory[digest] = value
                except Exception:
                    # A truncated/stale/unreadable entry is a miss, not a crash.
                    self.stats.errors += 1
                    value = None
                else:
                    if tier == "disk":
                        # Refresh mtime so gc()'s LRU sees *use* recency,
                        # not just store recency — hot entries must outlive
                        # cold one-offs in long-lived shared directories.
                        try:
                            os.utime(self._path(digest))
                        except OSError:
                            pass
                    else:
                        self.stats.remote_hits += 1
                        if self.cache_dir is not None:
                            # Read-through: future lookups (and gc
                            # accounting) are served locally, with a
                            # fresh mtime.
                            self._write_atomic(self._path(digest), blob)
        if value is None:
            self.stats.misses[stage] += 1
            return None
        self.stats.hits[stage] += 1
        return rehydrate(value) if rehydrate is not None else value

    def put(self, key: CacheKey, stage: str, value: Any, *, isolate: bool = False) -> None:
        """Store one stage artefact.

        With ``isolate=True`` the cache serialises ``value`` once and keeps
        the *bytes* in the memory tier (deserialised lazily on first hit;
        the same bytes go to disk), so callers may keep mutating the live
        object after the call without re-pickling it themselves.  A store
        lands in every configured tier: memory, local disk and — written
        back with the same atomic rename — the shared remote directory.
        """
        digest = key.digest(stage)
        blob: bytes | None = None
        if isolate:
            try:
                blob = self._dumps(value)
            except Exception:
                # Unpicklable artefacts cannot be isolated: skip the store.
                self.stats.errors += 1
                return
            value = _LazyBlob(blob)
        self._memory[digest] = value
        self.stats.stores[stage] += 1
        if self.cache_dir is None and self.remote_dir is None:
            return
        if blob is None:
            try:
                blob = self._dumps(value)
            except Exception:
                # Unpicklable artefacts stay memory-tier only.
                self.stats.errors += 1
                return
        if self.cache_dir is not None:
            self._write_atomic(self._path(digest), blob)
        if self.remote_dir is not None and self._write_atomic(
            self._remote_path(digest), blob
        ):
            self.stats.remote_stores += 1

    def _write_atomic(self, path: Path, blob: bytes) -> bool:
        """Publish ``blob`` at ``path`` via temp-file + same-directory
        rename (atomic on POSIX filesystems, including NFS mounts), so
        parallel writers on any machine never observe a torn entry."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.errors += 1
            return False
        return True

    # -- maintenance ----------------------------------------------------------

    def _disk_entries(self) -> list[tuple[float, int, Path]]:
        """Every on-disk entry as ``(mtime, size, path)``, oldest first."""
        assert self.cache_dir is not None
        entries: list[tuple[float, int, Path]] = []
        for path in self.cache_dir.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue  # a parallel writer/GC raced us; skip
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda e: (e[0], e[2].name))
        return entries

    def disk_bytes(self) -> int:
        """Current on-disk footprint of the cache directory (0 if memory-only)."""
        if self.cache_dir is None:
            return 0
        total = sum(size for _, size, _ in self._disk_entries())
        self.stats.disk_bytes = total
        return total

    def gc(self, max_bytes: int) -> int:
        """Evict least-recently-used disk entries until ≤ ``max_bytes`` remain.

        LRU is approximated by file mtime, which :meth:`get` refreshes on
        every disk-tier hit (best-effort) — so a hot, constantly-reused
        artefact outlives a cold one-off store even in long-lived shared
        cache directories.  Returns the number of evicted entries; the
        memory tier is left untouched (it dies with the process anyway)
        and the shared remote tier is never evicted from here (each
        machine gc's only its own local tier).
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if self.cache_dir is None:
            return 0
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                self.stats.errors += 1
                continue
            total -= size
            evicted += 1
            self.stats.evicted_entries += 1
            self.stats.evicted_bytes += size
        self.stats.disk_bytes = total
        return evicted

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier, if any, stays)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
