"""Content-addressed compile-session cache.

Entries are keyed by a :class:`CacheKey` — the canonical module hash
(:func:`repro.ir.hashing.module_hash`), the *canonicalised* pass-pipeline
spec (:func:`repro.ir.pass_registry.canonical_pipeline_spec`, so option
differences such as ``stencil-to-hls{pack=0}`` vs ``{pack=1}`` can never
collide), a fingerprint of the compiler options and a free-form ``extra``
discriminator (device, clock, framework, …) — plus a *stage* name, so the
compiler can reuse per-stage artefacts independently:

* ``middle-end``  — device-independent pass-pipeline output
  (HLS/LLVM modules, dataflow plans, f++ report, pass statistics)
* ``synthesis``   — the device-specific :class:`KernelDesign`
* ``result``      — a whole evaluation-harness :class:`FrameworkResult`

The cache is two-tier: a per-process in-memory store (values are held as
objects; callers clone mutable IR on the way in/out) and an optional
on-disk tier under ``cache_dir`` (pickled, written atomically so parallel
evaluation workers can share one directory).  Hit/miss/store counts are
recorded per stage and surfaced by ``--timing`` / the bench CLI.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

#: Pickling an IR module recurses through its use-def web, whose depth grows
#: with program length; the default interpreter limit (1000) is too small for
#: the larger benchmark kernels.
_PICKLE_RECURSION_LIMIT = 100_000


@dataclass(frozen=True)
class CacheKey:
    """Content address of one compilation session.

    Keys are value objects; :meth:`digest` mixes in the *stage* name so
    one session can store several independent artefacts.  They serialise
    losslessly to JSON (:meth:`as_dict` / :meth:`from_dict`), which is how
    the orchestrator's resumability manifest records completed cases.

    >>> key = CacheKey(module_hash="abc", pipeline="canonicalize")
    >>> CacheKey.from_dict(key.as_dict()) == key
    True
    >>> key.digest("result") == key.digest("result")
    True
    >>> key.digest("result") != key.digest("middle-end")
    True
    """

    module_hash: str
    pipeline: str = ""
    options: str = ""
    extra: str = ""

    def digest(self, stage: str) -> str:
        """Stable hex digest of this key for one stage name."""
        from repro.ir.hashing import fingerprint_text

        return fingerprint_text(
            "\x1f".join((stage, self.module_hash, self.pipeline, self.options, self.extra))
        )

    def as_dict(self) -> dict[str, str]:
        """This key as a JSON-safe dict (the manifest export form)."""
        return {
            "module_hash": self.module_hash,
            "pipeline": self.pipeline,
            "options": self.options,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, entry: dict[str, str]) -> "CacheKey":
        """Rebuild a key exported by :meth:`as_dict`."""
        return cls(
            module_hash=entry["module_hash"],
            pipeline=entry.get("pipeline", ""),
            options=entry.get("options", ""),
            extra=entry.get("extra", ""),
        )


class _LazyBlob:
    """Memory-tier placeholder: pickled bytes deserialised on first hit.

    ``put(isolate=True)`` already has the serialised form in hand for the
    disk tier; keeping the bytes (instead of eagerly unpickling a private
    copy) makes cold-path stores one ``dumps`` total, and lookups that
    never hit the entry never pay the ``loads``.
    """

    __slots__ = ("blob",)

    def __init__(self, blob: bytes) -> None:
        self.blob = blob


@dataclass
class CacheStats:
    """Per-stage hit/miss/store counters."""

    hits: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    misses: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    stores: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    errors: int = 0
    #: Entries removed by :meth:`CompileCache.gc` and the bytes they held.
    evicted_entries: int = 0
    evicted_bytes: int = 0
    #: On-disk footprint after the most recent ``gc``/``disk_bytes`` scan.
    disk_bytes: int = 0

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def as_dict(self) -> dict[str, Any]:
        stages = sorted(set(self.hits) | set(self.misses) | set(self.stores))
        return {
            "hits": self.total_hits,
            "misses": self.total_misses,
            "errors": self.errors,
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "disk_bytes": self.disk_bytes,
            "stages": {
                stage: {
                    "hits": self.hits.get(stage, 0),
                    "misses": self.misses.get(stage, 0),
                    "stores": self.stores.get(stage, 0),
                }
                for stage in stages
            },
        }

    def summary_lines(self) -> list[str]:
        lines = [f"cache hits: {self.total_hits}, misses: {self.total_misses}"]
        for stage, counts in self.as_dict()["stages"].items():
            lines.append(
                f"  {stage:<12} hits={counts['hits']} misses={counts['misses']} "
                f"stores={counts['stores']}"
            )
        if self.disk_bytes or self.evicted_entries:
            lines.append(
                f"  disk: {self.disk_bytes} bytes"
                f" (evicted {self.evicted_entries} entries"
                f" / {self.evicted_bytes} bytes)"
            )
        return lines


class CompileCache:
    """Two-tier (memory + optional disk) content-addressed artefact store.

    >>> cache = CompileCache()                       # memory-only tier
    >>> key = CacheKey(module_hash="abc", pipeline="canonicalize")
    >>> cache.get(key, "result") is None             # cold: a miss
    True
    >>> cache.put(key, "result", {"mpts": 1.5})
    >>> cache.get(key, "result")
    {'mpts': 1.5}
    >>> cache.stats.total_hits, cache.stats.total_misses
    (1, 1)

    Pass ``cache_dir`` to add the on-disk tier (pickled, written
    atomically, safe to share between parallel evaluation workers).
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: dict[str, Any] = {}
        self.stats = CacheStats()

    # -- paths ----------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / digest[:2] / f"{digest}.pkl"

    # -- pickle helpers -------------------------------------------------------

    @staticmethod
    def _dumps(value: Any) -> bytes:
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(max(limit, _PICKLE_RECURSION_LIMIT))
            return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            sys.setrecursionlimit(limit)

    @staticmethod
    def _loads(blob: bytes) -> Any:
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(max(limit, _PICKLE_RECURSION_LIMIT))
            return pickle.loads(blob)
        finally:
            sys.setrecursionlimit(limit)

    # -- core API -------------------------------------------------------------

    def get(
        self,
        key: CacheKey,
        stage: str,
        *,
        rehydrate: Callable[[Any], Any] | None = None,
    ) -> Any | None:
        """Look up one stage artefact; ``None`` means miss.

        ``rehydrate`` post-processes the stored value (e.g. cloning cached
        IR modules so callers can mutate their copy freely).
        """
        digest = key.digest(stage)
        value: Any | None = None
        if digest in self._memory:
            value = self._memory[digest]
            if isinstance(value, _LazyBlob):
                try:
                    value = self._loads(value.blob)
                    self._memory[digest] = value
                except Exception:
                    # The bytes came from our own dumps; a failure here is
                    # a corrupt entry, not a reason to retry the disk copy.
                    self.stats.errors += 1
                    del self._memory[digest]
                    value = None
        elif self.cache_dir is not None:
            path = self._path(digest)
            try:
                blob = path.read_bytes()
            except OSError:
                blob = None
            if blob is not None:
                try:
                    value = self._loads(blob)
                    self._memory[digest] = value
                except Exception:
                    # A truncated/stale/unreadable entry is a miss, not a crash.
                    self.stats.errors += 1
                    value = None
        if value is None:
            self.stats.misses[stage] += 1
            return None
        self.stats.hits[stage] += 1
        return rehydrate(value) if rehydrate is not None else value

    def put(self, key: CacheKey, stage: str, value: Any, *, isolate: bool = False) -> None:
        """Store one stage artefact.

        With ``isolate=True`` the cache serialises ``value`` once and keeps
        the *bytes* in the memory tier (deserialised lazily on first hit;
        the same bytes go to disk), so callers may keep mutating the live
        object after the call without re-pickling it themselves.
        """
        digest = key.digest(stage)
        blob: bytes | None = None
        if isolate:
            try:
                blob = self._dumps(value)
            except Exception:
                # Unpicklable artefacts cannot be isolated: skip the store.
                self.stats.errors += 1
                return
            value = _LazyBlob(blob)
        self._memory[digest] = value
        self.stats.stores[stage] += 1
        if self.cache_dir is None:
            return
        path = self._path(digest)
        if blob is None:
            try:
                blob = self._dumps(value)
            except Exception:
                # Unpicklable artefacts stay memory-tier only.
                self.stats.errors += 1
                return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)  # atomic: parallel writers never clash
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.errors += 1

    # -- maintenance ----------------------------------------------------------

    def _disk_entries(self) -> list[tuple[float, int, Path]]:
        """Every on-disk entry as ``(mtime, size, path)``, oldest first."""
        assert self.cache_dir is not None
        entries: list[tuple[float, int, Path]] = []
        for path in self.cache_dir.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue  # a parallel writer/GC raced us; skip
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda e: (e[0], e[2].name))
        return entries

    def disk_bytes(self) -> int:
        """Current on-disk footprint of the cache directory (0 if memory-only)."""
        if self.cache_dir is None:
            return 0
        total = sum(size for _, size, _ in self._disk_entries())
        self.stats.disk_bytes = total
        return total

    def gc(self, max_bytes: int) -> int:
        """Evict least-recently-used disk entries until ≤ ``max_bytes`` remain.

        LRU is approximated by file mtime: hits re-load entries but do not
        rewrite them, so mtime tracks *store* recency — good enough for the
        long-lived shared cache directories the evaluation matrix uses.
        Returns the number of evicted entries; the memory tier is left
        untouched (it dies with the process anyway).
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if self.cache_dir is None:
            return 0
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                self.stats.errors += 1
                continue
            total -= size
            evicted += 1
            self.stats.evicted_entries += 1
            self.stats.evicted_bytes += size
        self.stats.disk_bytes = total
        return evicted

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier, if any, stays)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
