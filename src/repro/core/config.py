"""Configuration options of the Stencil-HMLS compilation flow."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass
class CompilerOptions:
    """Options controlling the nine-step stencil→HLS transformation (§3.3).

    All defaults correspond to the behaviour evaluated in the paper; the
    switches exist to support the ablation studies listed in DESIGN.md.
    """

    #: Step 2 — replace field interfaces with a 512-bit packed version.
    pack_interfaces: bool = True
    #: Interface width in bits when packing is enabled.
    interface_width_bits: int = 512
    #: Step 4 — split the computation of each output field into its own
    #: concurrently running dataflow stage.
    split_compute_per_field: bool = True
    #: Step 8 — copy small constant data into on-chip BRAM/URAM.
    copy_small_data_to_bram: bool = True
    #: Step 9 — give every field argument its own AXI bundle / HBM bank;
    #: when False everything shares a single bundle (ablation A3).
    separate_bundles: bool = True
    #: Bundle all small data into one shared port (paper behaviour).
    bundle_small_data: bool = True
    #: Target initiation interval requested through hls.pipeline.
    target_ii: int = 1
    #: FIFO depth used for the generated streams.
    stream_depth: int = 16
    #: Request replication of compute units up to the device's port budget.
    replicate_compute_units: bool = True
    #: Hard upper bound on compute units (0 = only limited by the device).
    max_compute_units: int = 0
    #: Paper future work — generate a dynamic-shape kernel so one bitstream
    #: serves several problem sizes (extension; off by default as in the paper).
    dynamic_shape: bool = False
    #: Vitis-HLS optimisation level the backend is driven with.  The paper
    #: compiles the generated LLVM-IR with -O0, as higher levels strip the
    #: local-memory copies and inflate the II.
    vitis_opt_level: int = 0

    def validate(self) -> None:
        if self.interface_width_bits not in (64, 128, 256, 512, 1024):
            raise ValueError(
                f"interface_width_bits must be a power-of-two bus width, got {self.interface_width_bits}"
            )
        if self.target_ii < 1:
            raise ValueError("target_ii must be >= 1")
        if self.stream_depth < 1:
            raise ValueError("stream_depth must be >= 1")
        if self.max_compute_units < 0:
            raise ValueError("max_compute_units must be >= 0")


#: Short option names accepted in textual pipeline specs, e.g.
#: ``stencil-to-hls{pack=0}`` (long CompilerOptions field names work too).
PIPELINE_OPTION_ALIASES: dict[str, str] = {
    "pack": "pack_interfaces",
    "width": "interface_width_bits",
    "split": "split_compute_per_field",
    "bram": "copy_small_data_to_bram",
    "small_bram": "copy_small_data_to_bram",
    "bundles": "separate_bundles",
    "bundle_small": "bundle_small_data",
    "ii": "target_ii",
    "depth": "stream_depth",
    "replicate": "replicate_compute_units",
    "max_cu": "max_compute_units",
    "opt": "vitis_opt_level",
}


def _coerce_option(value: Any, current: Any) -> Any:
    """Coerce a parsed pipeline option value to the field's current type."""
    if isinstance(current, bool):
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"cannot interpret '{value}' as a boolean")
        raise ValueError(f"cannot interpret {value!r} as a boolean")
    if isinstance(current, int):
        return int(value)
    return value


def resolve_option_field(key: str) -> str:
    """Canonical :class:`CompilerOptions` field name for a pipeline option key.

    Accepts :data:`PIPELINE_OPTION_ALIASES` short names or full field names
    (dashes are accepted in place of underscores); raises for unknown keys.
    """
    known = {f.name for f in dataclasses.fields(CompilerOptions)}
    normalised = key.replace("-", "_")
    field_name = PIPELINE_OPTION_ALIASES.get(normalised, normalised)
    if field_name not in known:
        raise ValueError(
            f"unknown compiler option '{key}' "
            f"(known: {', '.join(sorted(set(PIPELINE_OPTION_ALIASES) | known))})"
        )
    return field_name


def resolve_option_overrides(
    base: CompilerOptions, overrides: Mapping[str, Any]
) -> CompilerOptions:
    """Apply pipeline-spec option overrides on top of ``base``.

    Keys resolve through :func:`resolve_option_field`.  Returns a validated
    copy; ``base`` is never mutated.
    """
    if not overrides:
        return base
    values: dict[str, Any] = {}
    for key, value in overrides.items():
        field_name = resolve_option_field(key)
        values[field_name] = _coerce_option(value, getattr(base, field_name))
    resolved = dataclasses.replace(base, **values)
    resolved.validate()
    return resolved
