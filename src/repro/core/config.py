"""Configuration options of the Stencil-HMLS compilation flow."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CompilerOptions:
    """Options controlling the nine-step stencil→HLS transformation (§3.3).

    All defaults correspond to the behaviour evaluated in the paper; the
    switches exist to support the ablation studies listed in DESIGN.md.
    """

    #: Step 2 — replace field interfaces with a 512-bit packed version.
    pack_interfaces: bool = True
    #: Interface width in bits when packing is enabled.
    interface_width_bits: int = 512
    #: Step 4 — split the computation of each output field into its own
    #: concurrently running dataflow stage.
    split_compute_per_field: bool = True
    #: Step 8 — copy small constant data into on-chip BRAM/URAM.
    copy_small_data_to_bram: bool = True
    #: Step 9 — give every field argument its own AXI bundle / HBM bank;
    #: when False everything shares a single bundle (ablation A3).
    separate_bundles: bool = True
    #: Bundle all small data into one shared port (paper behaviour).
    bundle_small_data: bool = True
    #: Target initiation interval requested through hls.pipeline.
    target_ii: int = 1
    #: FIFO depth used for the generated streams.
    stream_depth: int = 16
    #: Request replication of compute units up to the device's port budget.
    replicate_compute_units: bool = True
    #: Hard upper bound on compute units (0 = only limited by the device).
    max_compute_units: int = 0
    #: Paper future work — generate a dynamic-shape kernel so one bitstream
    #: serves several problem sizes (extension; off by default as in the paper).
    dynamic_shape: bool = False
    #: Vitis-HLS optimisation level the backend is driven with.  The paper
    #: compiles the generated LLVM-IR with -O0, as higher levels strip the
    #: local-memory copies and inflate the II.
    vitis_opt_level: int = 0

    def validate(self) -> None:
        if self.interface_width_bits not in (64, 128, 256, 512, 1024):
            raise ValueError(
                f"interface_width_bits must be a power-of-two bus width, got {self.interface_width_bits}"
            )
        if self.target_ii < 1:
            raise ValueError("target_ii must be >= 1")
        if self.stream_depth < 1:
            raise ValueError("stream_depth must be >= 1")
        if self.max_compute_units < 0:
            raise ValueError("max_compute_units must be >= 0")
