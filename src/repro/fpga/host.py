"""OpenCL/XRT-like host runtime for the simulated device.

The paper's host codes are OpenCL: they create buffers, migrate them to the
device, launch the kernel's compute units and read the profiling timestamps.
:class:`FPGAHost` mirrors that surface: ``program`` an :class:`Xclbin`,
create buffers, ``run`` the kernel, and get back an :class:`ExecutionResult`
containing the outputs (when functional simulation is requested) plus the
timing, power and energy figures the evaluation section reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.fpga.dataflow_sim import FunctionalDataflowSimulator, TimingModel, TimingReport
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.power_model import PowerModel, PowerReport
from repro.fpga.xclbin import Xclbin


class HostError(Exception):
    """Raised for host-side programming errors (missing buffers, bad xclbin)."""


@dataclass
class DeviceBuffer:
    """A host-visible handle to a device buffer (numpy-backed)."""

    name: str
    array: np.ndarray
    bank: int = 0

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


@dataclass
class ExecutionResult:
    """Everything one kernel launch produces."""

    kernel_name: str
    framework: str
    outputs: dict[str, np.ndarray]
    timing: TimingReport
    power: PowerReport
    wall_clock_s: float = 0.0
    functional: bool = False

    @property
    def mpts(self) -> float:
        return self.timing.mpts

    @property
    def runtime_s(self) -> float:
        return self.timing.runtime_s

    @property
    def average_power_w(self) -> float:
        return self.power.average_power_w

    @property
    def energy_j(self) -> float:
        return self.power.energy_j

    def as_dict(self) -> dict[str, Any]:
        payload = {
            "kernel": self.kernel_name,
            "framework": self.framework,
            "functional": self.functional,
        }
        payload.update(self.timing.as_dict())
        payload.update(self.power.as_dict())
        return payload


class FPGAHost:
    """Programs xclbins onto the device model and launches kernels."""

    def __init__(self, device: FPGADevice = ALVEO_U280) -> None:
        self.device = device
        self._programmed: Xclbin | None = None
        self.timing_model = TimingModel()
        self.power_model = PowerModel(device)

    # -- device management --------------------------------------------------------

    def program(self, xclbin: Xclbin) -> None:
        if xclbin.design.device.name != self.device.name:
            raise HostError(
                f"xclbin was synthesised for {xclbin.design.device.name}, "
                f"but this host drives a {self.device.name}"
            )
        self._programmed = xclbin

    @property
    def programmed_kernel(self) -> str:
        if self._programmed is None:
            raise HostError("no xclbin programmed")
        return self._programmed.kernel_name

    def create_buffer(self, name: str, array: np.ndarray, bank: int = 0) -> DeviceBuffer:
        return DeviceBuffer(name=name, array=np.asarray(array, dtype=np.float64), bank=bank)

    # -- kernel launch ----------------------------------------------------------------

    def run(
        self,
        arrays: dict[str, np.ndarray] | None = None,
        scalars: dict[str, float] | None = None,
        *,
        functional: bool = False,
        problem_points: int | None = None,
    ) -> ExecutionResult:
        """Launch the programmed kernel.

        With ``functional=True`` the dataflow simulator actually computes the
        outputs (use small grids); otherwise only the timing/power/energy
        estimates are produced, which is how the large paper-scale problem
        sizes are evaluated.
        """
        if self._programmed is None:
            raise HostError("no xclbin programmed")
        xclbin = self._programmed
        start = time.perf_counter()
        outputs: dict[str, np.ndarray] = {}
        if functional:
            if arrays is None:
                raise HostError("functional execution requires input arrays")
            if xclbin.hls_module is None:
                raise HostError("xclbin does not carry the HLS module needed for simulation")
            simulator = FunctionalDataflowSimulator(xclbin.hls_module, xclbin.plan)
            outputs = simulator.run(arrays, scalars)
        timing = self.timing_model.estimate(xclbin.design, problem_points)
        power = self.power_model.estimate(
            xclbin.design.resources,
            activity=timing.activity,
            sustained_bandwidth_gbs=timing.sustained_bandwidth_gbs,
            runtime_s=timing.runtime_s,
            clock_mhz=xclbin.design.clock_mhz,
        )
        wall = time.perf_counter() - start
        return ExecutionResult(
            kernel_name=xclbin.kernel_name,
            framework=xclbin.design.framework,
            outputs=outputs,
            timing=timing,
            power=power,
            wall_clock_s=wall,
            functional=functional,
        )
