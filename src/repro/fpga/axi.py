"""AXI interface port allocation under the shell's port budget."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import InterfaceSpec
from repro.fpga.device import FPGADevice


class PortAllocationError(Exception):
    """Raised when a kernel (or its CU replication) exceeds the port budget."""


@dataclass
class PortAllocation:
    """The m_axi ports used by one configuration of the kernel."""

    ports_per_cu: int
    compute_units: int
    bundles: list[str] = field(default_factory=list)

    @property
    def total_ports(self) -> int:
        return self.ports_per_cu * self.compute_units


def ports_for_interfaces(interfaces: list[InterfaceSpec]) -> int:
    """Number of distinct m_axi bundles (= physical ports) one CU needs."""
    return len({i.bundle for i in interfaces if i.protocol == "m_axi"})


def allocate_ports(
    interfaces: list[InterfaceSpec],
    device: FPGADevice,
    compute_units: int,
) -> PortAllocation:
    """Check a CU-replication choice against the device's AXI-port budget."""
    ports_per_cu = ports_for_interfaces(interfaces)
    total = ports_per_cu * compute_units
    if device.max_axi_ports and total > device.max_axi_ports:
        raise PortAllocationError(
            f"{compute_units} CU(s) x {ports_per_cu} ports = {total} exceeds the "
            f"{device.max_axi_ports}-port limit of the {device.name} shell"
        )
    bundles = sorted({i.bundle for i in interfaces if i.protocol == "m_axi"})
    return PortAllocation(ports_per_cu=ports_per_cu, compute_units=compute_units, bundles=bundles)


def max_compute_units(
    interfaces: list[InterfaceSpec],
    device: FPGADevice,
    requested_max: int = 0,
) -> int:
    """Largest CU replication the port budget allows (optionally capped)."""
    ports_per_cu = ports_for_interfaces(interfaces)
    limit = device.max_compute_units(ports_per_cu)
    if requested_max > 0:
        limit = min(limit, requested_max)
    return max(limit, 1)


def contention_factor(interfaces: list[InterfaceSpec], separate_bundles: bool) -> float:
    """Slow-down from sharing a single physical port between all accesses.

    The paper motivates per-argument bundles by noting that a single port
    would make "every memory access per cycle ... competing for the same
    port" (§3.3 step 9).  When bundles are shared, the effective memory
    throughput divides by the number of concurrent accessors.
    """
    m_axi = [i for i in interfaces if i.protocol == "m_axi"]
    if not m_axi:
        return 1.0
    if separate_bundles:
        return 1.0
    return float(len(m_axi))
