"""FPGA device models.

The numbers for the Alveo U280 follow the public data sheet (XCU280 FPGA,
8 GB HBM2, 32 HBM pseudo-channels) and the paper's statement that the U280
shell supports at most 32 AXI4 master ports, which is what limits PW
advection to four compute units (§4).  The VCK5000 profile exists because
the paper's future-work section proposes re-running the study on a device
without that port limitation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceResources:
    """Programmable-logic resources available to user kernels."""

    luts: int
    flip_flops: int
    bram_36k: int
    uram: int
    dsps: int

    def fraction(self, usage: "ResourceAmounts") -> dict[str, float]:
        return {
            "LUT": usage.luts / self.luts,
            "FF": usage.flip_flops / self.flip_flops,
            "BRAM": usage.bram_36k / self.bram_36k,
            "URAM": usage.uram / max(self.uram, 1),
            "DSP": usage.dsps / self.dsps,
        }


@dataclass(frozen=True)
class ResourceAmounts:
    luts: int = 0
    flip_flops: int = 0
    bram_36k: int = 0
    uram: int = 0
    dsps: int = 0


@dataclass(frozen=True)
class HBMConfig:
    """High Bandwidth Memory configuration."""

    banks: int
    capacity_bytes: int
    bandwidth_per_bank_gbs: float

    @property
    def total_bandwidth_gbs(self) -> float:
        return self.banks * self.bandwidth_per_bank_gbs


@dataclass(frozen=True)
class FPGADevice:
    """A complete device + shell profile."""

    name: str
    resources: DeviceResources
    hbm: HBMConfig
    #: Maximum number of AXI4 master ports supported by the shell
    #: (0 means unlimited, e.g. the VCK5000 profile).
    max_axi_ports: int
    default_clock_mhz: float
    #: Fraction of resources consumed by the static shell region.
    shell_lut_fraction: float = 0.10
    #: Idle/static power of the card in watts.
    static_power_w: float = 22.0

    @property
    def usable(self) -> DeviceResources:
        """Resources left for user kernels once the shell is accounted for."""
        scale = 1.0 - self.shell_lut_fraction
        return DeviceResources(
            luts=int(self.resources.luts * scale),
            flip_flops=int(self.resources.flip_flops * scale),
            bram_36k=int(self.resources.bram_36k * scale),
            uram=self.resources.uram,
            dsps=self.resources.dsps,
        )

    def max_compute_units(self, ports_per_cu: int) -> int:
        """How many CUs fit within the shell's AXI-port budget."""
        if ports_per_cu <= 0:
            return 1
        if self.max_axi_ports <= 0:
            return 64  # effectively unlimited; area will be the binding constraint
        return max(self.max_axi_ports // ports_per_cu, 1)


#: AMD Xilinx Alveo U280 (the paper's evaluation platform).
ALVEO_U280 = FPGADevice(
    name="Alveo U280",
    resources=DeviceResources(
        luts=1_303_680,
        flip_flops=2_607_360,
        bram_36k=2_016,
        uram=960,
        dsps=9_024,
    ),
    hbm=HBMConfig(banks=32, capacity_bytes=8 * 1024**3, bandwidth_per_bank_gbs=14.375),
    max_axi_ports=32,
    default_clock_mhz=300.0,
    static_power_w=30.0,
)

#: AMD Xilinx VCK5000 profile (paper future work: no AXI-port limitation).
VCK5000 = FPGADevice(
    name="VCK5000",
    resources=DeviceResources(
        luts=899_840,
        flip_flops=1_799_680,
        bram_36k=967,
        uram=463,
        dsps=1_968,
    ),
    hbm=HBMConfig(banks=4, capacity_bytes=16 * 1024**3, bandwidth_per_bank_gbs=25.6),
    max_axi_ports=0,
    default_clock_mhz=300.0,
    static_power_w=25.0,
)


def device_by_name(name: str) -> FPGADevice:
    table = {d.name.lower(): d for d in (ALVEO_U280, VCK5000)}
    key = name.lower()
    if key not in table:
        raise KeyError(f"unknown device '{name}' (known: {', '.join(table)})")
    return table[key]
