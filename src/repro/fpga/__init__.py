"""Simulated FPGA substrate.

The paper evaluates on an AMD Xilinx Alveo U280 driven through Vitis HLS and
XRT/OpenCL.  None of that hardware or proprietary tooling is available here,
so this package provides the closest synthetic equivalent (see DESIGN.md §2):

* :mod:`repro.fpga.device` — device models (U280, VCK5000) with resource,
  HBM and AXI-port budgets;
* :mod:`repro.fpga.hbm` / :mod:`repro.fpga.axi` — external memory bandwidth
  and interface-port allocation;
* :mod:`repro.fpga.resource_model` / :mod:`repro.fpga.power_model` — LUT/FF/
  BRAM/DSP estimation and the power/energy model of the measurement method
  the paper follows;
* :mod:`repro.fpga.synthesis` — a Vitis-HLS-like backend model turning the
  compiled kernel into a :class:`KernelDesign` (stages, II, clock, resources,
  compute-unit replication under the shell's AXI-port limit);
* :mod:`repro.fpga.dataflow_sim` — the functional dataflow simulator and the
  cycle-approximate timing model;
* :mod:`repro.fpga.xclbin` / :mod:`repro.fpga.host` — the "bitstream"
  container and an OpenCL-like host runtime.
"""

from repro.fpga.device import ALVEO_U280, VCK5000, FPGADevice, DeviceResources
from repro.fpga.resource_model import ResourceUsage
from repro.fpga.synthesis import KernelDesign, StageTiming, VitisHLSBackend, SynthesisError
from repro.fpga.dataflow_sim import FunctionalDataflowSimulator, TimingModel, TimingReport
from repro.fpga.host import ExecutionResult, FPGAHost
from repro.fpga.xclbin import Xclbin

__all__ = [
    "ALVEO_U280",
    "VCK5000",
    "DeviceResources",
    "ExecutionResult",
    "FPGADevice",
    "FPGAHost",
    "FunctionalDataflowSimulator",
    "KernelDesign",
    "ResourceUsage",
    "StageTiming",
    "SynthesisError",
    "TimingModel",
    "TimingReport",
    "VitisHLSBackend",
    "Xclbin",
]
