"""HBM bank allocation and external-memory bandwidth model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.device import FPGADevice


class HBMAllocationError(Exception):
    """Raised when a kernel's buffers do not fit in HBM."""


@dataclass
class HBMBankAssignment:
    """Mapping of kernel buffers to HBM banks (the connectivity file)."""

    assignments: dict[str, int] = field(default_factory=dict)

    def bank_of(self, buffer_name: str) -> int:
        return self.assignments[buffer_name]

    @property
    def banks_used(self) -> int:
        return len(set(self.assignments.values()))


class HBMAllocator:
    """Assigns kernel buffers to HBM banks.

    With ``multi_bank=True`` (Stencil-HMLS, SODA-opt, Vitis HLS — the paper
    wires connectivity by hand) a buffer may span several banks, so only the
    total HBM capacity limits the problem size.  With ``multi_bank=False``
    (DaCe / StencilFlow, which do not support automatic multi-bank
    assignment) every buffer must fit within a single 256 MB bank — this is
    why DaCe cannot handle the 134M-point PW advection case (§4).
    """

    def __init__(self, device: FPGADevice, multi_bank: bool = True) -> None:
        self.device = device
        self.multi_bank = multi_bank

    def allocate(self, buffer_bytes: dict[str, int], compute_units: int = 1) -> HBMBankAssignment:
        total_bytes = sum(buffer_bytes.values()) * compute_units
        capacity = self.device.hbm.capacity_bytes
        bank_capacity = capacity / self.device.hbm.banks
        if total_bytes > capacity:
            raise HBMAllocationError(
                f"buffers need {total_bytes / 1e9:.2f} GB but {self.device.name} "
                f"has only {capacity / 1e9:.2f} GB of HBM"
            )
        assignment = HBMBankAssignment()
        if not self.multi_bank:
            for name, nbytes in buffer_bytes.items():
                if nbytes > bank_capacity:
                    raise HBMAllocationError(
                        f"buffer '{name}' needs {nbytes / 1e6:.0f} MB but a single HBM "
                        f"bank holds {bank_capacity / 1e6:.0f} MB and this flow does not "
                        "support automatic multi-bank assignment"
                    )
            for bank, name in enumerate(buffer_bytes):
                assignment.assignments[name] = bank % self.device.hbm.banks
            return assignment
        bank = 0
        for cu in range(compute_units):
            for name in buffer_bytes:
                key = name if compute_units == 1 else f"{name}_cu{cu}"
                assignment.assignments[key] = bank % self.device.hbm.banks
                bank += 1
        return assignment

    def effective_bandwidth_gbs(self, banks_used: int) -> float:
        """Aggregate bandwidth of the banks actually used."""
        banks_used = max(1, min(banks_used, self.device.hbm.banks))
        return banks_used * self.device.hbm.bandwidth_per_bank_gbs


def streaming_time_seconds(
    bytes_moved: int,
    banks_used: int,
    device: FPGADevice,
    efficiency: float = 0.8,
) -> float:
    """Lower-bound time to move ``bytes_moved`` through the used HBM banks."""
    allocator = HBMAllocator(device)
    bandwidth = allocator.effective_bandwidth_gbs(banks_used) * efficiency
    return bytes_moved / (bandwidth * 1e9)
