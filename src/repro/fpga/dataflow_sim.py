"""Dataflow execution: functional simulation and cycle-approximate timing.

Two separate concerns:

* :class:`FunctionalDataflowSimulator` executes the generated HLS-dialect
  kernel on numpy arrays.  Dataflow stages are interpreted in program order
  with unbounded FIFOs, which is functionally equivalent to the concurrent
  execution on the device; the runtime data movers come from
  :mod:`repro.runtime`.  This is what correctness tests use (on small grids).
* :class:`TimingModel` turns a :class:`~repro.fpga.synthesis.KernelDesign`
  into cycle counts / runtime: stages within a group overlap (dataflow), the
  groups run back-to-back, every stage costs ``trip_count × II + depth``
  cycles and the memory stages bound the throughput from the HBM side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.plan import DataflowPlan
from repro.dialects import hls, llvm as llvm_d
from repro.dialects.builtin import ModuleOp
from repro.interp.interpreter import Interpreter, InterpreterError
from repro.fpga.synthesis import KernelDesign
from repro.runtime.data_movers import make_externals
from repro.runtime.streams import FIFOStream


class HLSInterpreter(Interpreter):
    """Interpreter extended with HLS-dialect and llvm aggregate semantics."""

    def __init__(self, module: ModuleOp, externals: dict[str, Callable] | None = None) -> None:
        super().__init__(module, externals)
        self.streams: list[FIFOStream] = []
        self.handlers.update(
            {
                hls.CreateStreamOp: HLSInterpreter._create_stream,
                hls.ReadOp: HLSInterpreter._stream_read,
                hls.WriteOp: HLSInterpreter._stream_write,
                hls.EmptyOp: HLSInterpreter._stream_empty,
                hls.FullOp: HLSInterpreter._stream_full,
                hls.PipelineOp: HLSInterpreter._directive,
                hls.UnrollOp: HLSInterpreter._directive,
                hls.ArrayPartitionOp: HLSInterpreter._directive,
                hls.InterfaceOp: HLSInterpreter._directive,
                hls.DataflowOp: HLSInterpreter._dataflow,
                llvm_d.ExtractValueOp: HLSInterpreter._extract_value,
                llvm_d.InsertValueOp: HLSInterpreter._insert_value,
                llvm_d.UndefOp: HLSInterpreter._undef,
                llvm_d.ConstantOp: HLSInterpreter._llvm_constant,
            }
        )

    # -- HLS handlers ----------------------------------------------------------

    def _create_stream(self, op: hls.CreateStreamOp, env) -> list[Any]:
        stream = FIFOStream(
            name=op.result.name_hint or f"stream{len(self.streams)}",
            depth=op.depth,
        )
        self.streams.append(stream)
        return [stream]

    def _stream_read(self, op: hls.ReadOp, env) -> list[Any]:
        return [env[op.stream].read()]

    def _stream_write(self, op: hls.WriteOp, env) -> list[Any]:
        env[op.stream].write(env[op.value])
        return []

    def _stream_empty(self, op: hls.EmptyOp, env) -> list[Any]:
        return [env[op.stream].empty()]

    def _stream_full(self, op: hls.FullOp, env) -> list[Any]:
        return [env[op.stream].full()]

    def _directive(self, op, env) -> list[Any]:
        return []

    def _dataflow(self, op: hls.DataflowOp, env) -> list[Any]:
        # Functional semantics: run the region to completion.  Dataflow
        # concurrency only affects timing, which is modelled separately.
        self._run_block(op.body, env)
        return []

    # -- llvm aggregate handlers ---------------------------------------------------

    def _extract_value(self, op: llvm_d.ExtractValueOp, env) -> list[Any]:
        container = env[op.operands[0]]
        value = container
        for index in op.position:
            value = value[index]
        return [float(value)]

    def _insert_value(self, op: llvm_d.InsertValueOp, env) -> list[Any]:
        container = np.array(env[op.operands[0]], copy=True)
        container[op.position[0]] = env[op.operands[1]]
        return [container]

    def _undef(self, op: llvm_d.UndefOp, env) -> list[Any]:
        return [np.zeros(1)]

    def _llvm_constant(self, op: llvm_d.ConstantOp, env) -> list[Any]:
        return [op.value]


class FunctionalDataflowSimulator:
    """Execute a compiled Stencil-HMLS kernel on numpy arrays."""

    def __init__(self, hls_module: ModuleOp, plan: DataflowPlan) -> None:
        self.module = hls_module
        self.plan = plan

    def run(self, arrays: dict[str, np.ndarray], scalars: dict[str, float] | None = None) -> dict[str, np.ndarray]:
        """Run the kernel; output/intermediate arrays are modified in place.

        ``arrays`` maps field / small-data argument names to numpy arrays;
        ``scalars`` maps scalar argument names to Python floats.
        """
        scalars = dict(scalars or {})
        externals = make_externals(self.plan)
        interpreter = HLSInterpreter(self.module, externals)
        args: list[Any] = []
        for info in self.plan.analysis.arguments:
            if info.kind == "scalar":
                if info.name not in scalars:
                    raise InterpreterError(f"missing scalar argument '{info.name}'")
                args.append(float(scalars[info.name]))
            else:
                if info.name not in arrays:
                    raise InterpreterError(f"missing array argument '{info.name}'")
                array = np.asarray(arrays[info.name], dtype=np.float64)
                if info.is_field and tuple(array.shape) != tuple(info.shape):
                    raise InterpreterError(
                        f"argument '{info.name}' has shape {array.shape}, expected {info.shape}"
                    )
                arrays[info.name] = array
                args.append(array)
        interpreter.run(self.plan.kernel_name, *args)
        return {
            info.name: arrays[info.name]
            for info in self.plan.analysis.arguments
            if info.kind == "field_output"
        }


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


@dataclass
class TimingReport:
    """Cycle-approximate execution estimate of one kernel run."""

    cycles: int
    runtime_s: float
    clock_mhz: float
    compute_units: int
    achieved_ii: int
    points: int
    mpts: float                  # million points per second (the paper's metric)
    sustained_bandwidth_gbs: float
    activity: float              # useful-work fraction (drives dynamic power)

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "runtime_s": self.runtime_s,
            "clock_mhz": self.clock_mhz,
            "compute_units": self.compute_units,
            "achieved_ii": self.achieved_ii,
            "mpts": self.mpts,
            "sustained_bandwidth_gbs": self.sustained_bandwidth_gbs,
            "activity": self.activity,
        }


class TimingModel:
    """Estimate cycles / runtime / MPt/s for a synthesised design."""

    def estimate(self, design: KernelDesign, problem_points: int | None = None) -> TimingReport:
        if problem_points is None:
            problem_points = design.plan.domain_points if design.plan is not None else 0
        total_cycles = 0
        for group in design.stage_groups:
            group_cycles = max((stage.cycles for stage in group), default=0)
            total_cycles += group_cycles
        total_cycles = max(total_cycles, 1)
        runtime_s = total_cycles / (design.clock_mhz * 1e6)
        mpts = problem_points / runtime_s / 1e6 if runtime_s > 0 else 0.0
        bandwidth = design.bytes_moved / runtime_s / 1e9 if runtime_s > 0 else 0.0
        activity = min(1.0, 1.0 / max(design.achieved_ii, 1))
        return TimingReport(
            cycles=total_cycles,
            runtime_s=runtime_s,
            clock_mhz=design.clock_mhz,
            compute_units=design.compute_units,
            achieved_ii=design.achieved_ii,
            points=problem_points,
            mpts=mpts,
            sustained_bandwidth_gbs=bandwidth,
            activity=activity,
        )
