"""Power and energy model.

The paper measures the average instantaneous power draw of the card over the
kernel execution and reports energy = average power x execution time
(following the method of Klaisoongnoen et al. [13]).  The model below
produces the same two quantities from the synthesis results:

* static power of the card (shell, HBM refresh, clocking);
* dynamic power proportional to the programmable-logic resources that are
  actually toggling (scaled by how busy the pipeline is, i.e. 1/II);
* HBM access power proportional to the sustained external bandwidth.

The constants are calibrated so the orderings of Figures 5 and 6 hold:
Stencil-HMLS draws marginally more power than the other frameworks (it keeps
many concurrent stages and all its memory ports busy every cycle) but its far
shorter runtime makes it by far the most energy efficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import FPGADevice
from repro.fpga.resource_model import ResourceUsage

# Dynamic power coefficients (watts per unit resource at 100% toggle, 300 MHz).
WATTS_PER_KLUT = 0.006
WATTS_PER_KFF = 0.002
WATTS_PER_BRAM = 0.003
WATTS_PER_DSP = 0.002
WATTS_PER_GBS = 0.020          # HBM + PHY power per GB/s of sustained traffic
MIN_ACTIVITY = 0.08            # even a stalled pipeline clocks its registers


@dataclass
class PowerReport:
    """Average power draw and energy for one kernel execution."""

    average_power_w: float
    energy_j: float
    static_power_w: float
    dynamic_power_w: float
    hbm_power_w: float

    def as_dict(self) -> dict[str, float]:
        return {
            "average_power_w": self.average_power_w,
            "energy_j": self.energy_j,
            "static_power_w": self.static_power_w,
            "dynamic_power_w": self.dynamic_power_w,
            "hbm_power_w": self.hbm_power_w,
        }


class PowerModel:
    """Estimate power/energy of a kernel execution on a device."""

    def __init__(self, device: FPGADevice) -> None:
        self.device = device

    def estimate(
        self,
        resources: ResourceUsage,
        *,
        activity: float,
        sustained_bandwidth_gbs: float,
        runtime_s: float,
        clock_mhz: float | None = None,
    ) -> PowerReport:
        """Average power over the kernel run and the energy it consumes.

        ``activity`` is the fraction of cycles in which the pipelines do
        useful work (1/II for a pipelined design, lower when the kernel is
        memory-stalled); ``sustained_bandwidth_gbs`` is the achieved external
        memory traffic.
        """
        clock_scale = (clock_mhz or self.device.default_clock_mhz) / 300.0
        activity = min(max(activity, MIN_ACTIVITY), 1.0)
        dynamic = clock_scale * activity * (
            resources.luts / 1000.0 * WATTS_PER_KLUT
            + resources.flip_flops / 1000.0 * WATTS_PER_KFF
            + resources.bram_36k * WATTS_PER_BRAM
            + resources.dsps * WATTS_PER_DSP
        )
        hbm = sustained_bandwidth_gbs * WATTS_PER_GBS
        static = self.device.static_power_w
        total = static + dynamic + hbm
        return PowerReport(
            average_power_w=total,
            energy_j=total * runtime_s,
            static_power_w=static,
            dynamic_power_w=dynamic,
            hbm_power_w=hbm,
        )
