"""The ``.xclbin``-like artefact produced by the flow.

On real hardware the output of Vitis is an ``.xclbin`` containing the FPGA
configuration plus metadata (kernels, memory connectivity, clocking).  Here
the artefact bundles everything the host runtime and the evaluation need:
the synthesised design, the dataflow plan, the IR at each level of the flow
and the f++ report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.plan import DataflowPlan
from repro.dialects.builtin import ModuleOp
from repro.fpga.synthesis import KernelDesign
from repro.fpp.preprocessor import FPPReport


@dataclass
class Xclbin:
    """A compiled FPGA kernel ready to be "programmed" onto the device model."""

    kernel_name: str
    design: KernelDesign
    plan: DataflowPlan
    stencil_module: ModuleOp | None = None
    hls_module: ModuleOp | None = None
    llvm_module: ModuleOp | None = None
    fpp_report: FPPReport | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def compute_units(self) -> int:
        return self.design.compute_units

    def connectivity(self) -> dict[str, str]:
        """The ``--connectivity.sp`` style mapping of m_axi bundles to HBM banks.

        Bundles shared by several arguments (the small-data port) appear once
        per compute unit, so the number of entries equals CUs × ports-per-CU.
        """
        mapping: dict[str, str] = {}
        bank = 0
        bundles: list[str] = []
        for interface in self.design.interfaces:
            if interface.protocol == "m_axi" and interface.bundle not in bundles:
                bundles.append(interface.bundle)
        for cu in range(self.design.compute_units):
            for bundle in bundles:
                key = f"{self.kernel_name}_{cu + 1}.{bundle}"
                mapping[key] = f"HBM[{bank % self.design.device.hbm.banks}]"
                bank += 1
        return mapping

    def summary(self) -> dict:
        return {
            "kernel": self.kernel_name,
            "framework": self.design.framework,
            "device": self.design.device.name,
            "clock_mhz": self.design.clock_mhz,
            "compute_units": self.design.compute_units,
            "ports_per_cu": self.design.ports_per_cu,
            "achieved_ii": self.design.achieved_ii,
            "utilisation_pct": self.design.utilisation(),
            "waves": self.plan.num_waves,
            "compute_stages": self.plan.num_compute_stages,
            "streams": len(self.plan.streams),
        }

    def save_metadata(self, path: str | Path) -> Path:
        """Write the xclbin metadata (not the IR) as JSON next to the results."""
        path = Path(path)
        payload = dict(self.summary())
        payload["connectivity"] = self.connectivity()
        payload.update(self.metadata)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path
