"""Resource estimation for synthesised kernels.

A simple additive model in the spirit of HLS report estimates: every
floating point operator, stream FIFO, shift-buffer plane, local array copy
and AXI interface contributes LUTs/FFs/BRAM/DSPs.  The constants are
calibrated so the *shape* of Tables 1 and 2 of the paper is reproduced
(Stencil-HMLS is BRAM-heavy because of the shift buffers and local copies
and grows slightly with the problem size; the naive flows are small and flat
across problem sizes).  Absolute percentages are not expected to match the
paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import DataflowPlan
from repro.fpga.device import FPGADevice


@dataclass
class ResourceUsage:
    """Estimated device resources used by one kernel configuration."""

    luts: int = 0
    flip_flops: int = 0
    bram_36k: int = 0
    uram: int = 0
    dsps: int = 0

    def scaled(self, factor: int) -> "ResourceUsage":
        return ResourceUsage(
            luts=self.luts * factor,
            flip_flops=self.flip_flops * factor,
            bram_36k=self.bram_36k * factor,
            uram=self.uram * factor,
            dsps=self.dsps * factor,
        )

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            luts=self.luts + other.luts,
            flip_flops=self.flip_flops + other.flip_flops,
            bram_36k=self.bram_36k + other.bram_36k,
            uram=self.uram + other.uram,
            dsps=self.dsps + other.dsps,
        )

    def utilisation(self, device: FPGADevice) -> dict[str, float]:
        """Percentage utilisation of the device, as reported in Tables 1-2."""
        res = device.resources
        return {
            "LUTs": 100.0 * self.luts / res.luts,
            "FFs": 100.0 * self.flip_flops / res.flip_flops,
            "BRAM": 100.0 * self.bram_36k / res.bram_36k,
            "DSPs": 100.0 * self.dsps / res.dsps,
        }

    def fits(self, device: FPGADevice) -> bool:
        usable = device.usable
        return (
            self.luts <= usable.luts
            and self.flip_flops <= usable.flip_flops
            and self.bram_36k <= usable.bram_36k
            and self.uram <= usable.uram
            and self.dsps <= usable.dsps
        )


# --- per-construct cost constants (double precision, -O0 style estimates) ----

COST_PER_FLOP_LUT = 320
COST_PER_FLOP_FF = 420
COST_PER_MUL_DSP = 8          # a double-precision multiplier
COST_PER_DIV_LUT = 3200       # dividers are LUT-heavy
COST_PER_STREAM_LUT = 180
COST_PER_STREAM_FF = 260
COST_PER_STAGE_LUT = 950      # dataflow stage control logic
COST_PER_STAGE_FF = 1300
COST_PER_AXI_PORT_LUT = 1200
COST_PER_AXI_PORT_FF = 1800
COST_PER_AXI_PORT_BRAM = 2    # read/write reorder buffers
KERNEL_BASE_LUT = 2500
KERNEL_BASE_FF = 3200
BRAM_BITS = 36 * 1024


def _bram_blocks(bits: int) -> int:
    return max(1, (bits + BRAM_BITS - 1) // BRAM_BITS) if bits > 0 else 0


def estimate_stencil_hmls(plan: DataflowPlan, compute_units: int = 1) -> ResourceUsage:
    """Resource usage of a Stencil-HMLS dataflow kernel (one or more CUs)."""
    usage = ResourceUsage(luts=KERNEL_BASE_LUT, flip_flops=KERNEL_BASE_FF)
    analysis = plan.analysis

    # Compute pipelines: one per compute stage (step 4 split).
    for wave in plan.waves:
        for compute in wave.computes:
            flops = max(compute.flops_per_point, 1)
            muls = max(flops // 2, 1)
            usage.luts += COST_PER_STAGE_LUT + flops * COST_PER_FLOP_LUT
            usage.flip_flops += COST_PER_STAGE_FF + flops * COST_PER_FLOP_FF
            usage.dsps += muls * COST_PER_MUL_DSP
        # Load / shift / duplicate / write stages.
        num_mover_stages = 2 + len(wave.shifts) + len(wave.duplicates)
        usage.luts += num_mover_stages * COST_PER_STAGE_LUT
        usage.flip_flops += num_mover_stages * COST_PER_STAGE_FF
        # Shift buffer storage (2*radius planes per field).
        for shift in wave.shifts:
            usage.bram_36k += _bram_blocks(shift.buffer_elements * 64)

    # Streams.
    for stream in plan.streams:
        usage.luts += COST_PER_STREAM_LUT
        usage.flip_flops += COST_PER_STREAM_FF
        usage.bram_36k += _bram_blocks(stream.element_bits * stream.depth)

    # Small-data copies in BRAM (this is the part that grows with problem size).
    for copy in plan.small_copies:
        usage.bram_36k += _bram_blocks(copy.elements * copy.element_bits)

    # AXI interfaces.
    ports = plan.ports_per_cu
    usage.luts += ports * COST_PER_AXI_PORT_LUT
    usage.flip_flops += ports * COST_PER_AXI_PORT_FF
    usage.bram_36k += ports * COST_PER_AXI_PORT_BRAM

    return usage.scaled(compute_units)


def estimate_loop_kernel(
    num_stages: int,
    flops_per_point: int,
    num_ports: int,
    local_buffer_bits: int = 0,
    pipeline_depth_scale: float = 1.0,
) -> ResourceUsage:
    """Resource usage of a Von-Neumann style loop-nest kernel.

    Used by the Vitis HLS and SODA-opt baseline models: a single (or a few)
    sequential loop nests, no shift buffers, little on-chip storage, so the
    footprint is small and independent of the problem size.
    """
    usage = ResourceUsage(luts=KERNEL_BASE_LUT, flip_flops=KERNEL_BASE_FF)
    flops = max(flops_per_point, 1)
    usage.luts += int(num_stages * COST_PER_STAGE_LUT * pipeline_depth_scale)
    usage.flip_flops += int(num_stages * COST_PER_STAGE_FF * pipeline_depth_scale)
    # Sequential loops time-multiplex one operator set rather than one per stage.
    usage.luts += int(flops * COST_PER_FLOP_LUT * 0.35)
    usage.flip_flops += int(flops * COST_PER_FLOP_FF * 0.25)
    usage.dsps += max(flops // 6, 1) * COST_PER_MUL_DSP // 4
    usage.luts += num_ports * COST_PER_AXI_PORT_LUT
    usage.flip_flops += num_ports * COST_PER_AXI_PORT_FF
    usage.bram_36k += num_ports * COST_PER_AXI_PORT_BRAM
    usage.bram_36k += _bram_blocks(local_buffer_bits)
    return usage
