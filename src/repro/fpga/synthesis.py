"""Vitis-HLS-like synthesis model.

The real flow hands the f++-processed LLVM-IR to the AMD Xilinx HLS backend,
which produces HDL and ultimately an ``.xclbin``.  That backend is not
available, so this module models what it produces: a :class:`KernelDesign`
describing the synthesised kernel — its dataflow stages and their initiation
intervals, clock frequency, AXI port allocation, compute-unit replication
under the shell's 32-port budget, and estimated resource usage.

The design is derived from the :class:`~repro.core.plan.DataflowPlan`
produced by the stencil→HLS transformation together with the f++ report
(which proves the generated LLVM-IR carried the right directives and legal
streams).  Baseline frameworks construct their own designs directly (see
:mod:`repro.baselines`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CompilerOptions
from repro.core.plan import DataflowPlan, InterfaceSpec
from repro.fpga import axi
from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.hbm import HBMAllocator
from repro.fpga.resource_model import ResourceUsage, estimate_stencil_hmls
from repro.fpp.preprocessor import FPPReport


class SynthesisError(Exception):
    """Raised when a kernel cannot be synthesised for the target device."""


@dataclass
class StageTiming:
    """Timing of one pipeline/stage in the synthesised design."""

    name: str
    kind: str                   # 'compute' | 'memory' | 'shift' | 'control'
    ii: int
    depth: int                  # pipeline fill latency in cycles
    trip_count: int

    @property
    def cycles(self) -> int:
        return self.trip_count * self.ii + self.depth


@dataclass
class KernelDesign:
    """The synthesised kernel as the backend would report it."""

    kernel_name: str
    framework: str
    device: FPGADevice
    clock_mhz: float
    compute_units: int
    ports_per_cu: int
    #: Stages grouped by concurrency: stages in the same group overlap
    #: (dataflow), groups execute back-to-back.
    stage_groups: list[list[StageTiming]] = field(default_factory=list)
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    interfaces: list[InterfaceSpec] = field(default_factory=list)
    plan: DataflowPlan | None = None
    bytes_moved: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def achieved_ii(self) -> int:
        """The II of the critical compute stage (what HLS reports)."""
        compute_iis = [
            stage.ii
            for group in self.stage_groups
            for stage in group
            if stage.kind == "compute"
        ]
        return max(compute_iis) if compute_iis else 1

    @property
    def total_ports(self) -> int:
        return self.ports_per_cu * self.compute_units

    def add_group(self, stages: list[StageTiming]) -> None:
        self.stage_groups.append(stages)

    def utilisation(self) -> dict[str, float]:
        return self.resources.utilisation(self.device)


class VitisHLSBackend:
    """Synthesis model for the Stencil-HMLS flow."""

    def __init__(self, device: FPGADevice = ALVEO_U280, clock_mhz: float | None = None) -> None:
        self.device = device
        self.clock_mhz = clock_mhz or device.default_clock_mhz

    def synthesise(
        self,
        plan: DataflowPlan,
        fpp_report: FPPReport | None = None,
        options: CompilerOptions | None = None,
    ) -> KernelDesign:
        options = options or plan.options

        # The paper compiles the generated LLVM-IR with -O0: higher levels
        # strip the local-memory copies and inflate the II.
        achieved_ii = options.target_ii
        if options.vitis_opt_level > 0:
            achieved_ii = max(options.target_ii * 4, 4)

        if fpp_report is not None and fpp_report.pipelined_loops == 0:
            # Without pipeline directives the scheduler falls back to a
            # conservative sequential schedule.
            achieved_ii = max(achieved_ii, 12)

        # --- compute-unit replication under the AXI port budget -----------------
        ports_per_cu = axi.ports_for_interfaces(plan.interfaces)
        compute_units = 1
        if options.replicate_compute_units:
            compute_units = axi.max_compute_units(
                plan.interfaces, self.device, options.max_compute_units
            )
        # Shrink the replication until the design fits on the device.
        while compute_units > 1:
            if estimate_stencil_hmls(plan, compute_units).fits(self.device):
                break
            compute_units -= 1
        resources = estimate_stencil_hmls(plan, compute_units)
        if not resources.fits(self.device):
            raise SynthesisError(
                f"kernel '{plan.kernel_name}' does not fit on {self.device.name} "
                f"even with a single compute unit"
            )
        axi.allocate_ports(plan.interfaces, self.device, compute_units)

        # --- HBM allocation ---------------------------------------------------------
        # Compute units partition the iteration space; they share the same
        # field buffers, so capacity is checked once (bank assignment still
        # spreads interfaces across banks per CU for bandwidth).
        arg_bytes = {
            a.name: a.num_elements * a.element_bits // 8
            for a in plan.analysis.arguments
            if a.is_field or a.kind == "small_data"
        }
        HBMAllocator(self.device, multi_bank=True).allocate(arg_bytes)

        design = KernelDesign(
            kernel_name=plan.kernel_name,
            framework="Stencil-HMLS",
            device=self.device,
            clock_mhz=self.clock_mhz,
            compute_units=compute_units,
            ports_per_cu=ports_per_cu,
            resources=resources,
            interfaces=list(plan.interfaces),
            plan=plan,
        )

        # --- stage timing ---------------------------------------------------------------
        lanes = max(i.packed_lanes for i in plan.interfaces) if plan.interfaces else 1
        contention = axi.contention_factor(plan.interfaces, options.separate_bundles)
        points_per_cu = max(plan.domain_points // compute_units, 1)
        total_bytes = 0
        for wave in plan.waves:
            group: list[StageTiming] = []
            plane = 1
            for extent in plan.grid_shape[1:]:
                plane *= extent
            for shift in wave.shifts:
                fill = shift.radius * plane + 64
                group.append(
                    StageTiming(
                        name=shift.callee, kind="shift", ii=achieved_ii,
                        depth=fill, trip_count=points_per_cu,
                    )
                )
            # Without the per-field split (ablation A1) a single loop
            # time-multiplexes every output field's computation and write,
            # which inflates the initiation interval accordingly.
            compute_ii = achieved_ii
            if not options.split_compute_per_field and len(wave.computes) > 1:
                compute_ii = achieved_ii * len(wave.computes)
            for compute in wave.computes:
                depth = 60 + 3 * compute.flops_per_point
                group.append(
                    StageTiming(
                        name=compute.label, kind="compute", ii=compute_ii,
                        depth=depth, trip_count=points_per_cu,
                    )
                )
            # Memory stage.  With one bundle per argument every field streams
            # through its own port concurrently; with a single shared bundle
            # (ablation A3) all fields of all compute units contend for one
            # physical port, so the port has to move the whole wave's traffic.
            fields_moved = len(wave.load.fields) + len(wave.write.fields)
            wave_bytes = fields_moved * plan.analysis.total_grid_points * 8
            total_bytes += wave_bytes
            if options.separate_bundles:
                mem_trip = points_per_cu // lanes + 1
            else:
                mem_trip = fields_moved * plan.domain_points // lanes + 1
            group.append(
                StageTiming(
                    name=f"memory_w{wave.index}", kind="memory", ii=1,
                    depth=200, trip_count=mem_trip,
                )
            )
            design.add_group(group)

        design.bytes_moved = total_bytes
        if fpp_report is not None:
            design.notes.append(
                f"f++: {fpp_report.total_directives} directives, "
                f"{fpp_report.streams_checked} streams validated"
            )
        return design
